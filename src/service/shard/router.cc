#include "service/shard/router.h"

#include <sstream>

#include "service/query.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dna::service::shard {

ShardRouter::ShardRouter(std::vector<Dialer> dialers)
    : partition_(static_cast<uint32_t>(dialers.size())) {
  DNA_CHECK_MSG(!dialers.empty(), "a router needs at least one shard");
  shards_.reserve(dialers.size());
  for (Dialer& dialer : dialers) {
    auto shard = std::make_unique<Shard>();
    shard->dial = std::move(dialer);
    shards_.push_back(std::move(shard));
  }
}

ShardRouter::~ShardRouter() = default;

size_t ShardRouter::connect_all() {
  size_t reachable = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    try {
      ensure_connected(shard, i);
      ++reachable;
    } catch (const Error& e) {
      // A version mismatch the catch-up cannot repair is divergence, not
      // unavailability — surface it instead of serving a split-brain tier.
      if (std::string(e.what()).find("diverged") != std::string::npos ||
          std::string(e.what()).find("gap") != std::string::npos) {
        throw;
      }
      disconnect(shard);
    } catch (const std::exception&) {
      disconnect(shard);
    }
  }
  return reachable;
}

void ShardRouter::disconnect(Shard& shard) {
  shard.client.reset();
  shard.transport.reset();
}

void ShardRouter::ensure_connected(Shard& shard, size_t index) {
  if (shard.client) return;
  shard.transport = shard.dial();
  shard.client = std::make_unique<ServiceClient>(*shard.transport);

  // Where is the shard? A restarted shard has already replayed its own
  // journal; the delta to the deployment head is what the router owes it.
  const QueryResult probe = shard.client->request("version");
  if (!probe.ok) throw Error("version probe failed: " + probe.body);
  if (shard.ever_connected) {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    ++metrics_.reconnects;
  }
  shard.ever_connected = true;
  shard.version = probe.version;

  std::vector<HistoryEntry> missed;
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    if (head_version_ == 0) head_version_ = shard.version;  // first contact
    for (const HistoryEntry& entry : history_) {
      if (entry.version > shard.version) missed.push_back(entry);
    }
    const uint64_t after_replay =
        missed.empty() ? shard.version : missed.back().version;
    if (after_replay < head_version_) {
      throw Error("shard " + std::to_string(index) + " is at version " +
                  std::to_string(shard.version) + " but the deployment is at " +
                  std::to_string(head_version_) +
                  " — history gap the router cannot replay");
    }
  }

  // Reconnect-and-replay: re-commit, in order, everything the shard missed
  // while it was down. Version ids make this exactly-once — a commit the
  // shard applied before crashing is already reflected in its journaled
  // head, so it was filtered out above.
  for (const HistoryEntry& entry : missed) {
    const QueryResult replayed =
        shard.client->request("commit " + entry.change_text);
    if (!replayed.ok || replayed.version != entry.version) {
      throw Error("replay of version " + std::to_string(entry.version) +
                  " diverged on shard " + std::to_string(index) + ": " +
                  (replayed.ok ? "acked version " +
                                     std::to_string(replayed.version)
                               : replayed.body));
    }
    shard.version = replayed.version;
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    ++metrics_.replayed_commits;
  }
}

QueryResult ShardRouter::request_locked(Shard& shard, size_t index,
                                        const std::string& line) {
  ensure_connected(shard, index);
  return shard.client->request(line);
}

QueryResult ShardRouter::request_on(size_t index, const std::string& line,
                                    bool retry_once) {
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const bool had_connection = shard.client != nullptr;
  std::string detail;
  try {
    return request_locked(shard, index, line);
  } catch (const std::exception& e) {
    disconnect(shard);
    detail = e.what();
  }
  // A failure on a connection we already held may just be staleness (the
  // shard restarted since): one fresh dial retries the request. A failure
  // on a fresh dial is the shard being down — no point repeating it.
  if (retry_once && had_connection) {
    try {
      return request_locked(shard, index, line);
    } catch (const std::exception& e) {
      disconnect(shard);
      detail = e.what();
    }
  }
  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    ++metrics_.shard_errors;
  }
  throw Error("shard " + std::to_string(index) + " unavailable: " + detail);
}

QueryResult ShardRouter::handle_commit(const std::string& line) {
  std::lock_guard<std::mutex> commit_lock(commit_mutex_);
  const std::string change_text(trim(line.substr(6)));

  QueryResult first_ok;
  bool have_ok = false;
  uint64_t committed = 0;
  std::string unavailable_detail;
  for (size_t i = 0; i < shards_.size(); ++i) {
    QueryResult result;
    try {
      // No blind retry for commits: a transport failure leaves "applied?"
      // unknown, and the reconnect catch-up resolves it exactly once by
      // consulting the shard's acked version.
      result = request_on(i, line, /*retry_once=*/false);
    } catch (const std::exception& e) {
      unavailable_detail = e.what();
      continue;  // the shard catches up from history when it returns
    }
    if (!result.ok) {
      // A rejection is deterministic (bad change text, inapplicable plan):
      // with identical replicas it happens on every shard, so nothing was
      // applied anywhere — unless an earlier shard acked, which means the
      // replicas diverged.
      if (have_ok) {
        result.body = "shard " + std::to_string(i) +
                      " diverged on commit: " + result.body;
      }
      return result;
    }
    if (!have_ok) {
      first_ok = result;
      have_ok = true;
      committed = result.version;
    } else if (result.version != committed) {
      QueryResult diverged;
      diverged.ok = false;
      diverged.body = "shard " + std::to_string(i) + " committed version " +
                      std::to_string(result.version) + ", expected " +
                      std::to_string(committed);
      return diverged;
    }
    std::lock_guard<std::mutex> shard_lock(shards_[i]->mutex);
    shards_[i]->version = result.version;
  }

  if (!have_ok) {
    QueryResult failed;
    failed.ok = false;
    failed.body = "commit failed: no shard reachable (" + unavailable_detail +
                  ")";
    return failed;
  }
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    history_.push_back({committed, change_text});
    head_version_ = committed;
  }
  // Close the reconnect race: a shard whose fan-out attempt failed above
  // may have been re-dialed by a concurrent query thread whose catch-up
  // ran *before* the history append — connected, but permanently missing
  // this commit. Its acked version gives it away; dropping the connection
  // forces the next use through catch-up against the now-complete history.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    if (shard->client && shard->version < committed) disconnect(*shard);
  }
  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    ++metrics_.commits;
  }
  return first_ok;
}

QueryResult ShardRouter::handle_scatter(const std::string& line) {
  // Under the commit lock so no fan-out lands mid-scatter: every partition
  // answers at the same version, keeping the merge equal to one monolithic
  // evaluation of the same line.
  std::lock_guard<std::mutex> commit_lock(commit_mutex_);
  const size_t n = shards_.size();
  std::vector<QueryResult> parts;
  parts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string scoped = "part " + std::to_string(i) + "/" +
                               std::to_string(n) + " " + line;
    parts.push_back(request_on(i, scoped, /*retry_once=*/true));
  }
  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    ++metrics_.scatters;
  }
  for (const QueryResult& part : parts) {
    if (!part.ok) return part;  // deterministic evaluation error
  }
  for (const QueryResult& part : parts) {
    if (part.version != parts.front().version) {
      QueryResult diverged;
      diverged.ok = false;
      diverged.body = "scatter answered at versions " +
                      std::to_string(parts.front().version) + " and " +
                      std::to_string(part.version);
      return diverged;
    }
  }
  // The verdicts AND together; bodies are rendered identically to the
  // unscoped evaluation, so any failing partition's response *is* the
  // monolithic answer, and an all-clear is any partition's response.
  for (const QueryResult& part : parts) {
    if (starts_with(part.body, "holds false")) return part;
  }
  return parts.front();
}

QueryResult ShardRouter::handle_shutdown() {
  // Best-effort broadcast: a shard that is down has nothing to stop.
  for (size_t i = 0; i < shards_.size(); ++i) {
    try {
      request_on(i, "shutdown", /*retry_once=*/false);
    } catch (const std::exception&) {
    }
  }
  QueryResult result;
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    shutdown_requested_ = true;
    result.version = head_version_;
  }
  result.body = "shutting down";
  return result;
}

bool ShardRouter::shutdown_requested() const {
  std::lock_guard<std::mutex> history_lock(history_mutex_);
  return shutdown_requested_;
}

QueryResult ShardRouter::handle(const std::string& line) {
  const std::string trimmed(trim(line));
  try {
    if (trimmed == "metrics") {
      QueryResult result;
      result.body = metrics().str();
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "shutdown") return handle_shutdown();
    if (starts_with(trimmed, "commit ") || trimmed == "commit") {
      return handle_commit(trimmed);
    }

    // Classify for routing; malformed lines fail here with the same parser
    // (and message) a monolithic service would use.
    const Query query = parse_query(trimmed);
    size_t target = 0;
    switch (query.kind) {
      case QueryKind::kReach:
      case QueryKind::kPaths:
        target = partition_.owner_of(query.src);
        break;
      case QueryKind::kCheck:
        if (query.invariant.kind == core::Invariant::Kind::kLoopFree) {
          if (query.scope_count > 1) {
            // Already scoped by the caller: any replica can evaluate it;
            // spread by the scope index.
            target = query.scope_index % shards_.size();
          } else if (shards_.size() > 1) {
            return handle_scatter(trimmed);
          }
        } else {
          target = partition_.owner_of(query.invariant.src);
        }
        break;
      case QueryKind::kWhatIf:
        // No source node to own a what-if; spread deterministically by the
        // request text (any replica previews the same answer).
        target = shard_of(trimmed, static_cast<uint32_t>(shards_.size()));
        break;
      case QueryKind::kVersion:
      case QueryKind::kHash:
        target = 0;
        break;
    }
    QueryResult result = request_on(target, trimmed, /*retry_once=*/true);
    {
      std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
      ++metrics_.queries_routed;
    }
    return result;
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    return failed;
  }
}

RouterMetrics ShardRouter::metrics() const {
  RouterMetrics copy;
  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    copy = metrics_;
  }
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    copy.head_version = head_version_;
  }
  copy.shard_connected.reserve(shards_.size());
  copy.shard_versions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    copy.shard_connected.push_back(shard->client != nullptr);
    copy.shard_versions.push_back(shard->version);
  }
  return copy;
}

std::string RouterMetrics::str() const {
  std::ostringstream out;
  size_t connected = 0;
  for (const bool up : shard_connected) connected += up ? 1 : 0;
  out << "router metrics:\n";
  out << "  shards: " << shard_connected.size() << " (" << connected
      << " connected), head version " << head_version << "\n";
  for (size_t i = 0; i < shard_connected.size(); ++i) {
    out << "  shard " << i << ": "
        << (shard_connected[i] ? "connected" : "down") << ", version "
        << shard_versions[i] << "\n";
  }
  out << "  queries: " << queries_routed << " routed, " << scatters
      << " scattered, " << shard_errors << " shard error(s)\n";
  out << "  commits: " << commits << " broadcast, " << replayed_commits
      << " replayed\n";
  out << "  reconnects: " << reconnects << "\n";
  return out.str();
}

void RouterSession::run() {
  char buffer[4096];
  try {
    for (;;) {
      const size_t count = transport_.recv(buffer, sizeof(buffer));
      if (count == 0) break;  // peer closed
      decoder_.feed(std::string_view(buffer, count));
      while (auto request = decoder_.next()) {
        QueryResult result = router_.handle(*request);
        if (router_.shutdown_requested()) shutdown_requested_ = true;
        std::string payload = encode_response(result);
        if (payload.size() > kMaxFramePayload) {
          result.ok = false;
          result.body = "response too large (" +
                        std::to_string(payload.size()) + " bytes)";
          payload = encode_response(result);
        }
        transport_.send(encode_frame(payload));
        if (shutdown_requested_) return;
      }
    }
  } catch (const std::exception& e) {
    DNA_WARN("router session terminated: " << e.what());
  }
}

}  // namespace dna::service::shard
