#include "service/shard/router.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <thread>

#include "obs/recorder.h"
#include "service/query.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dna::service::shard {

ShardRouter::ShardRouter(std::vector<Dialer> dialers, RouterOptions options)
    : options_(options),
      partition_(static_cast<uint32_t>(dialers.size()),
                 std::max<uint32_t>(1, options.replicas)),
      ctr_queries_routed_(registry_.counter("router.queries_routed")),
      ctr_scatters_(registry_.counter("router.scatters")),
      ctr_commits_(registry_.counter("router.commits")),
      ctr_degraded_commits_(registry_.counter("router.degraded_commits")),
      ctr_shard_errors_(registry_.counter("router.shard_errors")),
      ctr_failovers_(registry_.counter("router.failovers")),
      ctr_reconnects_(registry_.counter("router.reconnects")),
      ctr_replayed_commits_(registry_.counter("router.replayed_commits")),
      ctr_syncs_(registry_.counter("router.syncs")),
      ctr_breaker_opens_(registry_.counter("router.breaker_opens")),
      hist_request_(registry_.histogram("router.request_seconds")) {
  DNA_CHECK_MSG(!dialers.empty(), "a router needs at least one shard");
  // Clamp the knobs to the deployment: R and quorum can never exceed the
  // shard count, and a quorum of zero would make "committed" meaningless.
  options_.replicas = partition_.replicas();
  options_.quorum = std::max<uint32_t>(
      1, std::min<uint32_t>(options_.quorum,
                            static_cast<uint32_t>(dialers.size())));
  shards_.reserve(dialers.size());
  hist_shard_rtt_.reserve(dialers.size());
  for (Dialer& dialer : dialers) {
    auto shard = std::make_unique<Shard>();
    shard->dial = std::move(dialer);
    shard->jitter = Rng(options_.jitter_seed + shards_.size());
    shards_.push_back(std::move(shard));
    hist_shard_rtt_.push_back(&registry_.histogram(
        "router.s" + std::to_string(hist_shard_rtt_.size()) + ".rtt_seconds"));
  }
}

ShardRouter::~ShardRouter() = default;

size_t ShardRouter::connect_all() {
  size_t reachable = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    try {
      ensure_connected(shard, i);
      breaker_success(shard);
      ++reachable;
    } catch (const Error& e) {
      // A version mismatch neither replay nor sync can repair is
      // divergence, not unavailability — surface it instead of serving a
      // split-brain tier.
      if (std::string(e.what()).find("diverged") != std::string::npos) {
        throw;
      }
      disconnect(shard);
    } catch (const std::exception&) {
      disconnect(shard);
    }
  }
  // Probing raises the deployment head to the max acked version seen; a
  // shard connected *before* a later probe raised the head would serve
  // stale answers. Drop such connections — their next use replays or
  // syncs up to the head first.
  uint64_t head;
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    head = head_version_;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    if (shard->client && shard->version < head) disconnect(*shard);
  }
  return reachable;
}

void ShardRouter::disconnect(Shard& shard) {
  shard.client.reset();
  shard.transport.reset();
}

bool ShardRouter::breaker_open(const Shard& shard) const {
  return shard.breaker_open_until_ns > obs::now_ns();
}

void ShardRouter::breaker_success(Shard& shard) {
  shard.breaker_failures = 0;
  shard.breaker_open_until_ns = 0;
}

void ShardRouter::breaker_failure(Shard& shard) {
  if (shard.breaker_failures == 0) ctr_breaker_opens_.add();
  ++shard.breaker_failures;
  // Bounded exponential backoff: initial << (failures-1), capped, plus
  // deterministic jitter in [0, 50%] so a fleet of routers doesn't re-dial
  // a recovering shard in lock-step.
  const uint32_t exponent = std::min<uint32_t>(shard.breaker_failures - 1, 20);
  uint64_t backoff_ms = options_.backoff_initial_ms << exponent;
  backoff_ms = std::min(backoff_ms, options_.backoff_max_ms);
  backoff_ms += shard.jitter.below(backoff_ms / 2 + 1);
  shard.breaker_open_until_ns = obs::now_ns() + backoff_ms * 1'000'000u;
}

std::vector<size_t> ShardRouter::scope_candidates(size_t primary) const {
  const size_t n = shards_.size();
  std::vector<size_t> candidates;
  candidates.reserve(options_.replicas);
  for (uint32_t k = 0; k < options_.replicas; ++k) {
    candidates.push_back((primary + k) % n);
  }
  return candidates;
}

std::vector<size_t> ShardRouter::node_candidates(std::string_view name) const {
  const std::vector<uint32_t> replicas = partition_.replicas_of(name);
  return std::vector<size_t>(replicas.begin(), replicas.end());
}

std::string ShardRouter::fetch_sync_payload(size_t lagging_index,
                                            uint64_t head) {
  // Donor selection under try_lock only: the caller holds the lagging
  // shard's mutex, and blocking on another shard's mutex here could
  // deadlock against a thread doing the same in the other direction. A
  // donor must already be connected *at the head* — a lagging donor would
  // clone us sideways, not forward.
  for (size_t j = 0; j < shards_.size(); ++j) {
    if (j == lagging_index) continue;
    Shard& donor = *shards_[j];
    std::unique_lock<std::mutex> donor_lock(donor.mutex, std::try_to_lock);
    if (!donor_lock.owns_lock()) continue;
    if (!donor.client || donor.version < head) continue;
    try {
      const QueryResult snapshot = donor.client->request("sync");
      if (!snapshot.ok) continue;
      // The payload rides inside a `seed <payload>` request frame; a model
      // too large for one frame cannot be streamed this way.
      if (snapshot.body.size() + 5 > kMaxFramePayload) return "";
      return snapshot.body;
    } catch (const std::exception&) {
      disconnect(donor);
    }
  }
  return "";
}

void ShardRouter::ensure_connected(Shard& shard, size_t index) {
  if (shard.client) return;
  shard.transport = shard.dial();
  shard.client = std::make_unique<ServiceClient>(*shard.transport);

  // Where is the shard? A restarted shard has already replayed its own
  // journal; the delta to the deployment head is what the router owes it.
  const QueryResult probe = shard.client->request("version");
  if (!probe.ok) throw Error("version probe failed: " + probe.body);
  if (shard.ever_connected) ctr_reconnects_.add();
  shard.ever_connected = true;
  shard.version = probe.version;

  const auto plan_catchup = [&](uint64_t from, std::vector<HistoryEntry>* out,
                                uint64_t* head) {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    // Any acked version is evidence the deployment reached it: the head is
    // the max over everything the router has seen, so a fresh router
    // learns the head from whichever shard answers first and heals the
    // stragglers against it.
    if (shard.version > head_version_) head_version_ = shard.version;
    out->clear();
    for (const HistoryEntry& entry : history_) {
      if (entry.version > from) out->push_back(entry);
    }
    *head = head_version_;
  };

  std::vector<HistoryEntry> missed;
  uint64_t head = 0;
  plan_catchup(shard.version, &missed, &head);
  const uint64_t covered = missed.empty() ? shard.version
                                          : missed.back().version;
  if (covered < head) {
    // The commit history cannot reach the head from where this shard is —
    // a fresh (or wiped) shard joining a deployment with prior history, or
    // a router restart that emptied the history. Journal-seeded warm-up:
    // clone a head-version peer's compacted snapshot into the shard, then
    // replay whatever tail the history still holds.
    const std::string payload = fetch_sync_payload(index, head);
    if (payload.empty()) {
      throw Error("shard " + std::to_string(index) + " is at version " +
                  std::to_string(shard.version) + " but the deployment is at " +
                  std::to_string(head) +
                  " — history gap and no sync donor available");
    }
    const QueryResult seeded = shard.client->request("seed " + payload);
    if (!seeded.ok) {
      throw Error("journal-seeded sync of shard " + std::to_string(index) +
                  " failed: " + seeded.body);
    }
    shard.version = seeded.version;
    ctr_syncs_.add();
    if (obs::FlightRecorder* recorder = flight_recorder()) {
      recorder->mark_event("shard_sync",
                           "shard " + std::to_string(index) + " seeded at v" +
                               std::to_string(seeded.version));
    }
    plan_catchup(shard.version, &missed, &head);
  }

  // Reconnect-and-replay: re-commit, in order, everything the shard missed
  // while it was down. Version ids make this exactly-once — a commit the
  // shard applied before crashing (or received inside the seed) is already
  // reflected in its acked head, so it was filtered out above.
  for (const HistoryEntry& entry : missed) {
    const QueryResult replayed =
        shard.client->request("commit " + entry.change_text);
    if (!replayed.ok || replayed.version != entry.version) {
      throw Error("replay of version " + std::to_string(entry.version) +
                  " diverged on shard " + std::to_string(index) + ": " +
                  (replayed.ok ? "acked version " +
                                     std::to_string(replayed.version)
                               : replayed.body));
    }
    shard.version = replayed.version;
    ctr_replayed_commits_.add();
  }
}

QueryResult ShardRouter::request_locked(Shard& shard, size_t index,
                                        const std::string& line) {
  ensure_connected(shard, index);
  return shard.client->request(line);
}

QueryResult ShardRouter::request_on(size_t index, const std::string& line,
                                    bool retry_once) {
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const bool had_connection = shard.client != nullptr;
  std::string detail;
  try {
    QueryResult result = request_locked(shard, index, line);
    breaker_success(shard);
    return result;
  } catch (const std::exception& e) {
    disconnect(shard);
    detail = e.what();
  }
  // A failure on a connection we already held may just be staleness (the
  // shard restarted since): one fresh dial retries the request. A failure
  // on a fresh dial is the shard being down — no point repeating it.
  if (retry_once && had_connection) {
    try {
      QueryResult result = request_locked(shard, index, line);
      breaker_success(shard);
      return result;
    } catch (const std::exception& e) {
      disconnect(shard);
      detail = e.what();
    }
  }
  breaker_failure(shard);
  ctr_shard_errors_.add();
  if (obs::FlightRecorder* recorder = flight_recorder()) {
    // Auto-dump: pin a sample of the router's state at the moment the
    // shard was declared unreachable.
    recorder->mark_event(
        "shard_death", "shard " + std::to_string(index) + ": " + detail);
  }
  throw Error("shard " + std::to_string(index) + " unavailable: " + detail);
}

QueryResult ShardRouter::request_observed(size_t index,
                                          const std::string& line,
                                          bool retry_once, TraceCtx* ctx) {
  std::string sent = line;
  char id_hex[24];
  if (ctx != nullptr) {
    std::snprintf(id_hex, sizeof(id_hex), "%llx",
                  static_cast<unsigned long long>(ctx->trace.id()));
    sent = "trace:" + std::string(id_hex) + " " + line;
  }
  const uint64_t start_ns = obs::now_ns();
  // The router's own work since the previous leg (or the request's
  // arrival) — parsing, partition lookup, lock waits, merge bookkeeping —
  // is charged as "route", keeping the stitched timeline contiguous.
  if (ctx != nullptr && start_ns > ctx->cursor_ns) {
    ctx->trace.add("route", ctx->cursor_ns - ctx->epoch_ns,
                   start_ns - ctx->cursor_ns);
  }
  QueryResult result = request_on(index, sent, retry_once);
  const uint64_t end_ns = obs::now_ns();
  hist_shard_rtt_[index]->observe(end_ns - start_ns);
  if (ctx != nullptr) {
    // The RTT leg is span "s<i>"; the shard's own spans (sent back on the
    // response status line) stitch in as "s<i>.<leg>" children, re-based at
    // the RTT start. A child's whole timeline fits inside the RTT that
    // carried it, so the nesting holds by construction.
    const std::string leg = "s" + std::to_string(index);
    const uint64_t offset = start_ns - ctx->epoch_ns;
    ctx->trace.add(leg, offset, end_ns - start_ns);
    ctx->cursor_ns = end_ns;
    if (!result.trace.empty()) {
      if (const auto child = obs::Trace::decode(result.trace)) {
        ctx->trace.add_child(leg + ".", offset, *child);
      }
      result.trace.clear();  // the stitched router trace supersedes it
    }
  }
  return result;
}

QueryResult ShardRouter::request_failover(
    const std::vector<size_t>& candidates, const std::string& line,
    TraceCtx* ctx) {
  // Deterministic preference order (the ECMP model: many candidate
  // next-hops, fixed selection, failover on withdrawal). An open breaker
  // skips the candidate without paying a dial.
  std::string detail;
  std::vector<size_t> skipped;
  for (size_t rank = 0; rank < candidates.size(); ++rank) {
    const size_t index = candidates[rank];
    {
      std::lock_guard<std::mutex> lock(shards_[index]->mutex);
      if (breaker_open(*shards_[index])) {
        skipped.push_back(index);
        continue;
      }
    }
    try {
      QueryResult result =
          request_observed(index, line, /*retry_once=*/true, ctx);
      if (rank > 0) {
        ctr_failovers_.add();
        if (obs::FlightRecorder* recorder = flight_recorder()) {
          recorder->mark_event(
              "failover", "shard " + std::to_string(candidates.front()) +
                              " -> " + std::to_string(index));
        }
      }
      return result;
    } catch (const std::exception& e) {
      if (!detail.empty()) detail += "; ";
      detail += e.what();
    }
  }
  // Last resort: backoff rate-limits dialing, but it must never turn the
  // only remaining replica into a refusal — when nothing else answered,
  // the skipped candidates get one attempt regardless of their breaker.
  for (const size_t index : skipped) {
    try {
      QueryResult result =
          request_observed(index, line, /*retry_once=*/true, ctx);
      if (index != candidates.front()) ctr_failovers_.add();
      return result;
    } catch (const std::exception& e) {
      if (!detail.empty()) detail += "; ";
      detail += e.what();
    }
  }
  throw Error("no replica reachable (" + detail + ")");
}

QueryResult ShardRouter::handle_commit(const std::string& line,
                                       TraceCtx* ctx) {
  std::lock_guard<obs::TimedMutex> commit_lock(commit_mutex_);
  const std::string change_text(trim(line.substr(6)));

  QueryResult first_ok;
  bool have_ok = false;
  uint64_t committed = 0;
  size_t acks = 0;
  std::string unavailable_detail;
  std::vector<size_t> lagging;
  for (size_t i = 0; i < shards_.size(); ++i) {
    QueryResult result;
    try {
      // No blind retry for commits: a transport failure leaves "applied?"
      // unknown, and the reconnect catch-up resolves it exactly once by
      // consulting the shard's acked version.
      result = request_observed(i, line, /*retry_once=*/false, ctx);
    } catch (const std::exception& e) {
      unavailable_detail = e.what();
      lagging.push_back(i);
      continue;  // the shard catches up from history when it returns
    }
    if (!result.ok) {
      // A rejection is deterministic (bad change text, inapplicable plan):
      // with identical replicas it happens on every shard, so nothing was
      // applied anywhere — unless an earlier shard acked, which means the
      // replicas diverged.
      if (have_ok) {
        result.body = "shard " + std::to_string(i) +
                      " diverged on commit: " + result.body;
      }
      return result;
    }
    if (!have_ok) {
      first_ok = result;
      have_ok = true;
      committed = result.version;
    } else if (result.version != committed) {
      QueryResult diverged;
      diverged.ok = false;
      diverged.body = "shard " + std::to_string(i) + " committed version " +
                      std::to_string(result.version) + ", expected " +
                      std::to_string(committed);
      return diverged;
    }
    ++acks;
    std::lock_guard<std::mutex> shard_lock(shards_[i]->mutex);
    shards_[i]->version = result.version;
  }

  if (!have_ok) {
    QueryResult failed;
    failed.ok = false;
    failed.body = "commit failed: no shard reachable (" + unavailable_detail +
                  ")";
    return failed;
  }
  // The deployment advanced on at least one shard, so the history must
  // record the commit whether or not the quorum was met — catch-up
  // (replay/sync by version id) is what reconverges the stragglers, and it
  // can only replay what the history holds.
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    history_.push_back({committed, change_text});
    head_version_ = committed;
  }
  // Close the reconnect race: a shard whose fan-out attempt failed above
  // may have been re-dialed by a concurrent query thread whose catch-up
  // ran *before* the history append — connected, but permanently missing
  // this commit. Its acked version gives it away; dropping the connection
  // forces the next use through catch-up against the now-complete history.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    if (shard->client && shard->version < committed) disconnect(*shard);
  }
  if (acks < options_.quorum) {
    // Quorum shortfall: the change exists at `committed` on the acking
    // shards and *will* converge via catch-up, but the deployment cannot
    // promise the configured redundancy — surface a typed failure instead
    // of overstating durability.
    QueryResult failed;
    failed.ok = false;
    failed.version = committed;
    failed.body = "commit under-replicated: " + std::to_string(acks) + "/" +
                  std::to_string(options_.quorum) +
                  " acks at version " + std::to_string(committed) +
                  " (stragglers will catch up; last error: " +
                  unavailable_detail + ")";
    return failed;
  }
  ctr_commits_.add();
  if (!lagging.empty()) ctr_degraded_commits_.add();
  return first_ok;
}

QueryResult ShardRouter::handle_scatter(const std::string& line, TraceCtx* ctx,
                                        bool retried) {
  // Under the commit lock so no fan-out lands mid-scatter: every partition
  // answers at the same version, keeping the merge equal to one monolithic
  // evaluation of the same line.
  std::lock_guard<obs::TimedMutex> commit_lock(commit_mutex_);
  const size_t n = shards_.size();
  for (;;) {
    std::vector<QueryResult> parts;
    parts.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Scope i names a source filter, not a data placement: any replica
      // can evaluate it, so the scope fails over along (i, i+1, ...) mod n.
      const std::string scoped = "part " + std::to_string(i) + "/" +
                                 std::to_string(n) + " " + line;
      parts.push_back(request_failover(scope_candidates(i), scoped, ctx));
    }
    ctr_scatters_.add();
    for (const QueryResult& part : parts) {
      if (!part.ok) return part;  // deterministic evaluation error
    }
    uint64_t min_version = parts.front().version;
    uint64_t max_version = parts.front().version;
    for (const QueryResult& part : parts) {
      min_version = std::min(min_version, part.version);
      max_version = std::max(max_version, part.version);
    }
    if (min_version != max_version) {
      // A scope answered behind the freshest replica — that shard connected
      // before the router learned the true head (fresh router, partial
      // restart). Self-heal: record the higher head, drop every behind
      // connection so its next use goes through catch-up (replay or sync),
      // and retry the scatter once. A second mismatch is real divergence.
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        if (max_version > head_version_) head_version_ = max_version;
      }
      for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        if (shard->client && shard->version < max_version) {
          disconnect(*shard);
        }
      }
      if (!retried) {
        retried = true;
        continue;
      }
      QueryResult diverged;
      diverged.ok = false;
      diverged.body = "scatter answered at versions " +
                      std::to_string(min_version) + " and " +
                      std::to_string(max_version);
      return diverged;
    }
    // The verdicts AND together; bodies are rendered identically to the
    // unscoped evaluation, so any failing partition's response *is* the
    // monolithic answer, and an all-clear is any partition's response.
    for (const QueryResult& part : parts) {
      if (starts_with(part.body, "holds false")) return part;
    }
    return parts.front();
  }
}

QueryResult ShardRouter::handle_shutdown() {
  // Idempotent: the first shutdown broadcasts, repeats just acknowledge —
  // a client retrying the verb must never hang on (or re-kill) a tier that
  // is already stopping.
  bool already = false;
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    already = shutdown_requested_;
    shutdown_requested_ = true;
  }
  if (!already) {
    // Best-effort, but *logged*: a shard that is down has nothing to stop,
    // yet silently ignoring it would mask a shard that wedged instead of
    // exiting. No retry and no breaker churn — teardown must not hang.
    for (size_t i = 0; i < shards_.size(); ++i) {
      try {
        Shard& shard = *shards_[i];
        std::lock_guard<std::mutex> lock(shard.mutex);
        request_locked(shard, i, "shutdown");
      } catch (const std::exception& e) {
        DNA_WARN("shutdown broadcast: shard " << i << " unreachable ("
                                              << e.what() << ")");
      }
    }
  }
  QueryResult result;
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    result.version = head_version_;
  }
  result.body = already ? "already shutting down" : "shutting down";
  return result;
}

bool ShardRouter::shutdown_requested() const {
  std::lock_guard<std::mutex> history_lock(history_mutex_);
  return shutdown_requested_;
}

QueryResult ShardRouter::handle(const std::string& request) {
  const uint64_t start_ns = obs::now_ns();
  QueryResult result = handle_request(request);
  // Whole-request wall time — the denominator `diagnose` attributes the
  // per-shard RTT legs against.
  hist_request_.observe(obs::elapsed_ns(start_ns, obs::now_ns()));
  return result;
}

QueryResult ShardRouter::handle_request(const std::string& request) {
  // Strip a leading trace tag so commands still match behind it. A traced
  // request gets a router-level trace whose "total" span is the router's
  // whole wall time for the request; per-shard legs stitch in underneath.
  std::string line;
  TraceTag tag;
  try {
    tag = split_trace_tag(std::string(trim(request)), &line);
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    return failed;
  }
  if (!tag.traced && !trace_all()) return handle_line(line, nullptr);

  TraceCtx ctx;
  ctx.trace.set_id(tag.id != 0 ? tag.id : obs::next_trace_id());
  ctx.epoch_ns = obs::now_ns();
  ctx.cursor_ns = ctx.epoch_ns;
  QueryResult result = handle_line(line, &ctx);
  const uint64_t end_ns = obs::now_ns();
  // Tail work after the last shard leg — verdict merging, response
  // assembly — so the stitched spans tile the whole request.
  if (ctx.cursor_ns > ctx.epoch_ns && end_ns > ctx.cursor_ns) {
    ctx.trace.add("reply", ctx.cursor_ns - ctx.epoch_ns,
                  end_ns - ctx.cursor_ns);
  }
  ctx.trace.add("total", 0, end_ns - ctx.epoch_ns);
  if (tag.traced) result.trace = ctx.trace.encode();
  trace_log_.record(std::move(ctx.trace));
  return result;
}

QueryResult ShardRouter::handle_line(const std::string& trimmed,
                                     TraceCtx* ctx) {
  try {
    if (trimmed == "metrics" || trimmed == "metrics json") {
      QueryResult result;
      if (trimmed == "metrics") {
        result.body = metrics().str();
      } else {
        util::JsonWriter json;
        json.begin_object();
        metrics().append_json(json);
        json.end_object();
        result.body = json.str();
      }
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "stats" || trimmed == "stats json" ||
        trimmed == "stats prom") {
      QueryResult result;
      if (trimmed == "stats prom") {
        result.body = registry_.prometheus_text();
      } else if (trimmed == "stats json") {
        util::JsonWriter json;
        json.begin_object();
        registry_.append_json(json);
        json.end_object();
        result.body = json.str();
      } else {
        result.body = registry_.str();
      }
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "trace on" || trimmed == "trace off") {
      set_trace_all(trimmed == "trace on");
      QueryResult result;
      result.body =
          std::string("tracing ") + (trimmed == "trace on" ? "on" : "off");
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (starts_with(trimmed, "trace last ")) {
      const long long n = parse_int(trim(trimmed.substr(11)));
      if (n < 0) throw Error("trace last: count must be non-negative");
      QueryResult result;
      result.body = trace_log_.json(static_cast<size_t>(n));
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "healthz") {
      const Health verdict = health();
      QueryResult result;
      result.ok = verdict.ok;
      result.body = verdict.detail;
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "diagnose" || starts_with(trimmed, "diagnose ")) {
      std::vector<std::string> args = split_ws(trimmed);
      bool json_output = false;
      size_t queries = 60;
      for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "json") {
          json_output = true;
          continue;
        }
        const long long n = parse_int(args[i]);
        if (n < 0) throw Error("diagnose: bad query count '" + args[i] + "'");
        queries = static_cast<size_t>(n);
      }
      const obs::DiagnosisReport report = diagnose(queries);
      QueryResult result;
      if (json_output) {
        util::JsonWriter json;
        report.append_json(json);
        result.body = json.str();
      } else {
        result.body = report.str();
      }
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "flight" || starts_with(trimmed, "flight ")) {
      obs::FlightRecorder* recorder = flight_recorder();
      if (recorder == nullptr) {
        throw Error("no flight recorder attached (route --flight-ms=N)");
      }
      std::vector<std::string> args = split_ws(trimmed);
      long long window_ms = 0;
      long long max_samples = 0;
      if (args.size() > 1) window_ms = parse_int(args[1]);
      if (args.size() > 2) max_samples = parse_int(args[2]);
      if (window_ms < 0 || max_samples < 0) {
        throw Error("flight: usage is `flight [window-ms] [max-samples]`");
      }
      const uint64_t now = obs::now_ns();
      const uint64_t span = static_cast<uint64_t>(window_ms) * 1'000'000u;
      const uint64_t start =
          window_ms == 0 ? 0 : (span >= now ? 0 : now - span);
      QueryResult result;
      result.body = recorder->json(start, ~uint64_t{0},
                                   static_cast<size_t>(max_samples));
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "shutdown") return handle_shutdown();
    if (starts_with(trimmed, "commit ") || trimmed == "commit") {
      return handle_commit(trimmed, ctx);
    }

    // Classify for routing; malformed lines fail here with the same parser
    // (and message) a monolithic service would use. Every routed request
    // carries its replica preference list — primary first, failover order
    // after — so a dead shard never fails a query that any replica can
    // answer.
    const Query query = parse_query(trimmed);
    std::vector<size_t> candidates;
    switch (query.kind) {
      case QueryKind::kReach:
      case QueryKind::kPaths:
        candidates = node_candidates(query.src);
        break;
      case QueryKind::kCheck:
        if (query.invariant.kind == core::Invariant::Kind::kLoopFree) {
          if (query.scope_count > 1) {
            // Already scoped by the caller: any replica can evaluate it;
            // spread by the scope index.
            candidates = scope_candidates(query.scope_index % shards_.size());
          } else if (shards_.size() > 1) {
            return handle_scatter(trimmed, ctx);
          } else {
            candidates = scope_candidates(0);
          }
        } else {
          candidates = node_candidates(query.invariant.src);
        }
        break;
      case QueryKind::kWhatIf:
        // No source node to own a what-if; spread deterministically by the
        // request text (any replica previews the same answer).
        candidates = node_candidates(trimmed);
        break;
      case QueryKind::kRank:
      case QueryKind::kRisk:
      case QueryKind::kRiskDiff:
        // Risk analytics are pure functions of (sweep, version(s)) — the
        // same byte-identical-to-monolith contract as every query — so one
        // replica computes the whole answer; spread by text like what-ifs.
        // Each shard memoizes in its own RiskStore, so the deterministic
        // text spread also pins repeat polls to the replica already
        // holding the warm entry.
        candidates = node_candidates(trimmed);
        break;
      case QueryKind::kVersion:
      case QueryKind::kHash:
        candidates = scope_candidates(0);
        break;
    }
    QueryResult result = request_failover(candidates, trimmed, ctx);
    ctr_queries_routed_.add();
    return result;
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    return failed;
  }
}

Health ShardRouter::health() const {
  Health verdict;
  size_t connected = 0;
  std::vector<size_t> down;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> shard_lock(shards_[i]->mutex);
    if (shards_[i]->client != nullptr) {
      ++connected;
    } else {
      down.push_back(i);
    }
  }
  uint64_t head;
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    head = head_version_;
  }
  // Replica-aware: every candidate set spans `replicas` distinct shards,
  // so as long as at most R-1 shards are down every partition still has a
  // live replica — degraded, not dead. (The all-shards-down edge keeps at
  // least one connected shard as the bar.)
  const size_t tolerable =
      options_.replicas > 0 ? options_.replicas - 1 : 0;
  const bool covered = down.size() <= tolerable && connected > 0;
  verdict.ok = covered;
  std::ostringstream detail;
  if (down.empty()) {
    detail << "ok: " << connected << "/" << shards_.size()
           << " shards connected (R=" << options_.replicas
           << " quorum=" << options_.quorum << "), head v" << head;
  } else if (covered) {
    detail << "degraded: shard";
    for (const size_t index : down) detail << " " << index;
    detail << " down, replicas covering (" << connected << "/"
           << shards_.size() << " connected, R=" << options_.replicas
           << " quorum=" << options_.quorum << "), head v" << head;
  } else {
    detail << "unhealthy: shard";
    for (const size_t index : down) detail << " " << index;
    detail << " down (" << connected << "/" << shards_.size()
           << " connected, R=" << options_.replicas << "), head v" << head;
  }
  verdict.detail = detail.str();
  return verdict;
}

obs::DiagnosisReport ShardRouter::diagnose(size_t queries_per_phase) {
  obs::DiagnosisReport report;
  report.component = "router";
  const size_t threads = std::max<size_t>(2, shards_.size());
  report.threads = threads;
  // The network-global check: on a multi-shard deployment it scatters to
  // every shard, exercising the router's fan-out, the per-shard RTTs, and
  // the scatter serialization all at once.
  const std::string probe = "check loopfree";

  const auto hist_sum_seconds = [](const obs::Histogram& histogram) {
    return static_cast<double>(histogram.snapshot().sum) * 1e-9;
  };

  // Phase 1 — strictly sequential.
  const uint64_t seq_start_ns = obs::now_ns();
  for (size_t i = 0; i < queries_per_phase; ++i) handle(probe);
  report.queries_seq = queries_per_phase;
  report.seconds_seq =
      static_cast<double>(obs::elapsed_ns(seq_start_ns, obs::now_ns())) * 1e-9;

  // Leg baselines, so the attribution covers the flood phase only.
  const double wall0 = hist_sum_seconds(hist_request_);
  std::vector<double> rtt0(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    rtt0[i] = hist_sum_seconds(*hist_shard_rtt_[i]);
  }
  const uint64_t lock_wait0 = commit_mutex_.wait_ns();

  // Phase 2 — flooded.
  std::atomic<long long> remaining{
      static_cast<long long>(queries_per_phase)};
  const uint64_t flood_start_ns = obs::now_ns();
  std::vector<std::thread> submitters;
  submitters.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([this, &probe, &remaining] {
      for (;;) {
        if (remaining.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
        handle(probe);
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  report.queries_flood = queries_per_phase;
  report.seconds_flood =
      static_cast<double>(obs::elapsed_ns(flood_start_ns, obs::now_ns())) *
      1e-9;

  // Attribution: each request's wall time (hist_request_) decomposes into
  // the per-shard RTTs it waited on plus the router's own routing/merge
  // work — the remainder leg, which also absorbs scatter-lock waits.
  report.wall_seconds = hist_sum_seconds(hist_request_) - wall0;
  double rtt_total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const double rtt = hist_sum_seconds(*hist_shard_rtt_[i]) - rtt0[i];
    rtt_total += rtt;
    report.legs.push_back(
        {"shard " + std::to_string(i) + " rtt", rtt, 0});
  }
  report.legs.push_back(
      {"route (fan-out + merge)",
       std::max(0.0, report.wall_seconds - rtt_total), 0});
  report.lock_wait_seconds =
      static_cast<double>(commit_mutex_.wait_ns() - lock_wait0) * 1e-9;
  obs::finalize_diagnosis(report);
  return report;
}

RouterMetrics ShardRouter::metrics() const {
  RouterMetrics copy;
  copy.queries_routed = ctr_queries_routed_.value();
  copy.scatters = ctr_scatters_.value();
  copy.commits = ctr_commits_.value();
  copy.degraded_commits = ctr_degraded_commits_.value();
  copy.shard_errors = ctr_shard_errors_.value();
  copy.failovers = ctr_failovers_.value();
  copy.reconnects = ctr_reconnects_.value();
  copy.replayed_commits = ctr_replayed_commits_.value();
  copy.syncs = ctr_syncs_.value();
  copy.breaker_opens = ctr_breaker_opens_.value();
  copy.replicas = options_.replicas;
  copy.quorum = options_.quorum;
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    copy.head_version = head_version_;
  }
  copy.shard_connected.reserve(shards_.size());
  copy.shard_versions.reserve(shards_.size());
  copy.shard_breaker_open.reserve(shards_.size());
  const uint64_t now = obs::now_ns();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    copy.shard_connected.push_back(shard->client != nullptr);
    copy.shard_versions.push_back(shard->version);
    copy.shard_breaker_open.push_back(shard->breaker_open_until_ns > now);
  }
  return copy;
}

std::string RouterMetrics::str() const {
  std::ostringstream out;
  size_t connected = 0;
  for (const bool up : shard_connected) connected += up ? 1 : 0;
  out << "router metrics:\n";
  out << "  shards: " << shard_connected.size() << " (" << connected
      << " connected), R=" << replicas << " quorum=" << quorum
      << ", head version " << head_version << "\n";
  for (size_t i = 0; i < shard_connected.size(); ++i) {
    out << "  shard " << i << ": "
        << (shard_connected[i] ? "connected" : "down") << ", version "
        << shard_versions[i]
        << (shard_breaker_open[i] ? ", breaker open" : "") << "\n";
  }
  out << "  queries: " << queries_routed << " routed, " << scatters
      << " scattered, " << shard_errors << " shard error(s), " << failovers
      << " failover(s)\n";
  out << "  commits: " << commits << " committed (" << degraded_commits
      << " degraded), " << replayed_commits << " replayed\n";
  out << "  healing: " << reconnects << " reconnect(s), " << syncs
      << " sync(s), " << breaker_opens << " breaker open(s)\n";
  return out.str();
}

void RouterMetrics::append_json(util::JsonWriter& json) const {
  json.key("metrics").begin_object();
  json.key("queries_routed").value(static_cast<unsigned long long>(
      queries_routed));
  json.key("scatters").value(static_cast<unsigned long long>(scatters));
  json.key("commits").value(static_cast<unsigned long long>(commits));
  json.key("degraded_commits").value(static_cast<unsigned long long>(
      degraded_commits));
  json.key("shard_errors").value(static_cast<unsigned long long>(
      shard_errors));
  json.key("failovers").value(static_cast<unsigned long long>(failovers));
  json.key("reconnects").value(static_cast<unsigned long long>(reconnects));
  json.key("replayed_commits").value(static_cast<unsigned long long>(
      replayed_commits));
  json.key("syncs").value(static_cast<unsigned long long>(syncs));
  json.key("breaker_opens").value(static_cast<unsigned long long>(
      breaker_opens));
  json.key("head_version").value(static_cast<unsigned long long>(
      head_version));
  json.key("replicas").value(static_cast<unsigned long long>(replicas));
  json.key("quorum").value(static_cast<unsigned long long>(quorum));
  json.key("shards").begin_array();
  for (size_t i = 0; i < shard_connected.size(); ++i) {
    json.begin_object();
    json.key("connected").value(static_cast<bool>(shard_connected[i]));
    json.key("version").value(static_cast<unsigned long long>(
        shard_versions[i]));
    json.key("breaker_open").value(static_cast<bool>(shard_breaker_open[i]));
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void RouterSession::run() {
  char buffer[4096];
  try {
    for (;;) {
      const size_t count = transport_.recv(buffer, sizeof(buffer));
      if (count == 0) break;  // peer closed
      decoder_.feed(std::string_view(buffer, count));
      while (auto request = decoder_.next()) {
        QueryResult result = router_.handle(*request);
        if (router_.shutdown_requested()) shutdown_requested_ = true;
        std::string payload = encode_response(result);
        if (payload.size() > kMaxFramePayload) {
          result.ok = false;
          result.body = "response too large (" +
                        std::to_string(payload.size()) + " bytes)";
          payload = encode_response(result);
        }
        transport_.send(encode_frame(payload));
        if (shutdown_requested_) return;
      }
    }
  } catch (const std::exception& e) {
    DNA_WARN("router session terminated: " << e.what());
  }
}

}  // namespace dna::service::shard
