#include "service/shard/router.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <thread>

#include "obs/recorder.h"
#include "service/query.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dna::service::shard {

ShardRouter::ShardRouter(std::vector<Dialer> dialers)
    : partition_(static_cast<uint32_t>(dialers.size())),
      ctr_queries_routed_(registry_.counter("router.queries_routed")),
      ctr_scatters_(registry_.counter("router.scatters")),
      ctr_commits_(registry_.counter("router.commits")),
      ctr_shard_errors_(registry_.counter("router.shard_errors")),
      ctr_reconnects_(registry_.counter("router.reconnects")),
      ctr_replayed_commits_(registry_.counter("router.replayed_commits")),
      hist_request_(registry_.histogram("router.request_seconds")) {
  DNA_CHECK_MSG(!dialers.empty(), "a router needs at least one shard");
  shards_.reserve(dialers.size());
  hist_shard_rtt_.reserve(dialers.size());
  for (Dialer& dialer : dialers) {
    auto shard = std::make_unique<Shard>();
    shard->dial = std::move(dialer);
    shards_.push_back(std::move(shard));
    hist_shard_rtt_.push_back(&registry_.histogram(
        "router.s" + std::to_string(hist_shard_rtt_.size()) + ".rtt_seconds"));
  }
}

ShardRouter::~ShardRouter() = default;

size_t ShardRouter::connect_all() {
  size_t reachable = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    try {
      ensure_connected(shard, i);
      ++reachable;
    } catch (const Error& e) {
      // A version mismatch the catch-up cannot repair is divergence, not
      // unavailability — surface it instead of serving a split-brain tier.
      if (std::string(e.what()).find("diverged") != std::string::npos ||
          std::string(e.what()).find("gap") != std::string::npos) {
        throw;
      }
      disconnect(shard);
    } catch (const std::exception&) {
      disconnect(shard);
    }
  }
  return reachable;
}

void ShardRouter::disconnect(Shard& shard) {
  shard.client.reset();
  shard.transport.reset();
}

void ShardRouter::ensure_connected(Shard& shard, size_t index) {
  if (shard.client) return;
  shard.transport = shard.dial();
  shard.client = std::make_unique<ServiceClient>(*shard.transport);

  // Where is the shard? A restarted shard has already replayed its own
  // journal; the delta to the deployment head is what the router owes it.
  const QueryResult probe = shard.client->request("version");
  if (!probe.ok) throw Error("version probe failed: " + probe.body);
  if (shard.ever_connected) ctr_reconnects_.add();
  shard.ever_connected = true;
  shard.version = probe.version;

  std::vector<HistoryEntry> missed;
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    if (head_version_ == 0) head_version_ = shard.version;  // first contact
    for (const HistoryEntry& entry : history_) {
      if (entry.version > shard.version) missed.push_back(entry);
    }
    const uint64_t after_replay =
        missed.empty() ? shard.version : missed.back().version;
    if (after_replay < head_version_) {
      throw Error("shard " + std::to_string(index) + " is at version " +
                  std::to_string(shard.version) + " but the deployment is at " +
                  std::to_string(head_version_) +
                  " — history gap the router cannot replay");
    }
  }

  // Reconnect-and-replay: re-commit, in order, everything the shard missed
  // while it was down. Version ids make this exactly-once — a commit the
  // shard applied before crashing is already reflected in its journaled
  // head, so it was filtered out above.
  for (const HistoryEntry& entry : missed) {
    const QueryResult replayed =
        shard.client->request("commit " + entry.change_text);
    if (!replayed.ok || replayed.version != entry.version) {
      throw Error("replay of version " + std::to_string(entry.version) +
                  " diverged on shard " + std::to_string(index) + ": " +
                  (replayed.ok ? "acked version " +
                                     std::to_string(replayed.version)
                               : replayed.body));
    }
    shard.version = replayed.version;
    ctr_replayed_commits_.add();
  }
}

QueryResult ShardRouter::request_locked(Shard& shard, size_t index,
                                        const std::string& line) {
  ensure_connected(shard, index);
  return shard.client->request(line);
}

QueryResult ShardRouter::request_on(size_t index, const std::string& line,
                                    bool retry_once) {
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const bool had_connection = shard.client != nullptr;
  std::string detail;
  try {
    return request_locked(shard, index, line);
  } catch (const std::exception& e) {
    disconnect(shard);
    detail = e.what();
  }
  // A failure on a connection we already held may just be staleness (the
  // shard restarted since): one fresh dial retries the request. A failure
  // on a fresh dial is the shard being down — no point repeating it.
  if (retry_once && had_connection) {
    try {
      return request_locked(shard, index, line);
    } catch (const std::exception& e) {
      disconnect(shard);
      detail = e.what();
    }
  }
  ctr_shard_errors_.add();
  if (obs::FlightRecorder* recorder = flight_recorder()) {
    // Auto-dump: pin a sample of the router's state at the moment the
    // shard was declared unreachable.
    recorder->mark_event(
        "shard_death", "shard " + std::to_string(index) + ": " + detail);
  }
  throw Error("shard " + std::to_string(index) + " unavailable: " + detail);
}

QueryResult ShardRouter::request_observed(size_t index,
                                          const std::string& line,
                                          bool retry_once, TraceCtx* ctx) {
  std::string sent = line;
  char id_hex[24];
  if (ctx != nullptr) {
    std::snprintf(id_hex, sizeof(id_hex), "%llx",
                  static_cast<unsigned long long>(ctx->trace.id()));
    sent = "trace:" + std::string(id_hex) + " " + line;
  }
  const uint64_t start_ns = obs::now_ns();
  // The router's own work since the previous leg (or the request's
  // arrival) — parsing, partition lookup, lock waits, merge bookkeeping —
  // is charged as "route", keeping the stitched timeline contiguous.
  if (ctx != nullptr && start_ns > ctx->cursor_ns) {
    ctx->trace.add("route", ctx->cursor_ns - ctx->epoch_ns,
                   start_ns - ctx->cursor_ns);
  }
  QueryResult result = request_on(index, sent, retry_once);
  const uint64_t end_ns = obs::now_ns();
  hist_shard_rtt_[index]->observe(end_ns - start_ns);
  if (ctx != nullptr) {
    // The RTT leg is span "s<i>"; the shard's own spans (sent back on the
    // response status line) stitch in as "s<i>.<leg>" children, re-based at
    // the RTT start. A child's whole timeline fits inside the RTT that
    // carried it, so the nesting holds by construction.
    const std::string leg = "s" + std::to_string(index);
    const uint64_t offset = start_ns - ctx->epoch_ns;
    ctx->trace.add(leg, offset, end_ns - start_ns);
    ctx->cursor_ns = end_ns;
    if (!result.trace.empty()) {
      if (const auto child = obs::Trace::decode(result.trace)) {
        ctx->trace.add_child(leg + ".", offset, *child);
      }
      result.trace.clear();  // the stitched router trace supersedes it
    }
  }
  return result;
}

QueryResult ShardRouter::handle_commit(const std::string& line,
                                       TraceCtx* ctx) {
  std::lock_guard<obs::TimedMutex> commit_lock(commit_mutex_);
  const std::string change_text(trim(line.substr(6)));

  QueryResult first_ok;
  bool have_ok = false;
  uint64_t committed = 0;
  std::string unavailable_detail;
  for (size_t i = 0; i < shards_.size(); ++i) {
    QueryResult result;
    try {
      // No blind retry for commits: a transport failure leaves "applied?"
      // unknown, and the reconnect catch-up resolves it exactly once by
      // consulting the shard's acked version.
      result = request_observed(i, line, /*retry_once=*/false, ctx);
    } catch (const std::exception& e) {
      unavailable_detail = e.what();
      continue;  // the shard catches up from history when it returns
    }
    if (!result.ok) {
      // A rejection is deterministic (bad change text, inapplicable plan):
      // with identical replicas it happens on every shard, so nothing was
      // applied anywhere — unless an earlier shard acked, which means the
      // replicas diverged.
      if (have_ok) {
        result.body = "shard " + std::to_string(i) +
                      " diverged on commit: " + result.body;
      }
      return result;
    }
    if (!have_ok) {
      first_ok = result;
      have_ok = true;
      committed = result.version;
    } else if (result.version != committed) {
      QueryResult diverged;
      diverged.ok = false;
      diverged.body = "shard " + std::to_string(i) + " committed version " +
                      std::to_string(result.version) + ", expected " +
                      std::to_string(committed);
      return diverged;
    }
    std::lock_guard<std::mutex> shard_lock(shards_[i]->mutex);
    shards_[i]->version = result.version;
  }

  if (!have_ok) {
    QueryResult failed;
    failed.ok = false;
    failed.body = "commit failed: no shard reachable (" + unavailable_detail +
                  ")";
    return failed;
  }
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    history_.push_back({committed, change_text});
    head_version_ = committed;
  }
  // Close the reconnect race: a shard whose fan-out attempt failed above
  // may have been re-dialed by a concurrent query thread whose catch-up
  // ran *before* the history append — connected, but permanently missing
  // this commit. Its acked version gives it away; dropping the connection
  // forces the next use through catch-up against the now-complete history.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    if (shard->client && shard->version < committed) disconnect(*shard);
  }
  ctr_commits_.add();
  return first_ok;
}

QueryResult ShardRouter::handle_scatter(const std::string& line,
                                        TraceCtx* ctx) {
  // Under the commit lock so no fan-out lands mid-scatter: every partition
  // answers at the same version, keeping the merge equal to one monolithic
  // evaluation of the same line.
  std::lock_guard<obs::TimedMutex> commit_lock(commit_mutex_);
  const size_t n = shards_.size();
  std::vector<QueryResult> parts;
  parts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string scoped = "part " + std::to_string(i) + "/" +
                               std::to_string(n) + " " + line;
    parts.push_back(request_observed(i, scoped, /*retry_once=*/true, ctx));
  }
  ctr_scatters_.add();
  for (const QueryResult& part : parts) {
    if (!part.ok) return part;  // deterministic evaluation error
  }
  for (const QueryResult& part : parts) {
    if (part.version != parts.front().version) {
      QueryResult diverged;
      diverged.ok = false;
      diverged.body = "scatter answered at versions " +
                      std::to_string(parts.front().version) + " and " +
                      std::to_string(part.version);
      return diverged;
    }
  }
  // The verdicts AND together; bodies are rendered identically to the
  // unscoped evaluation, so any failing partition's response *is* the
  // monolithic answer, and an all-clear is any partition's response.
  for (const QueryResult& part : parts) {
    if (starts_with(part.body, "holds false")) return part;
  }
  return parts.front();
}

QueryResult ShardRouter::handle_shutdown() {
  // Best-effort broadcast: a shard that is down has nothing to stop.
  for (size_t i = 0; i < shards_.size(); ++i) {
    try {
      request_on(i, "shutdown", /*retry_once=*/false);
    } catch (const std::exception&) {
    }
  }
  QueryResult result;
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    shutdown_requested_ = true;
    result.version = head_version_;
  }
  result.body = "shutting down";
  return result;
}

bool ShardRouter::shutdown_requested() const {
  std::lock_guard<std::mutex> history_lock(history_mutex_);
  return shutdown_requested_;
}

QueryResult ShardRouter::handle(const std::string& request) {
  const uint64_t start_ns = obs::now_ns();
  QueryResult result = handle_request(request);
  // Whole-request wall time — the denominator `diagnose` attributes the
  // per-shard RTT legs against.
  hist_request_.observe(obs::elapsed_ns(start_ns, obs::now_ns()));
  return result;
}

QueryResult ShardRouter::handle_request(const std::string& request) {
  // Strip a leading trace tag so commands still match behind it. A traced
  // request gets a router-level trace whose "total" span is the router's
  // whole wall time for the request; per-shard legs stitch in underneath.
  std::string line;
  TraceTag tag;
  try {
    tag = split_trace_tag(std::string(trim(request)), &line);
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    return failed;
  }
  if (!tag.traced && !trace_all()) return handle_line(line, nullptr);

  TraceCtx ctx;
  ctx.trace.set_id(tag.id != 0 ? tag.id : obs::next_trace_id());
  ctx.epoch_ns = obs::now_ns();
  ctx.cursor_ns = ctx.epoch_ns;
  QueryResult result = handle_line(line, &ctx);
  const uint64_t end_ns = obs::now_ns();
  // Tail work after the last shard leg — verdict merging, response
  // assembly — so the stitched spans tile the whole request.
  if (ctx.cursor_ns > ctx.epoch_ns && end_ns > ctx.cursor_ns) {
    ctx.trace.add("reply", ctx.cursor_ns - ctx.epoch_ns,
                  end_ns - ctx.cursor_ns);
  }
  ctx.trace.add("total", 0, end_ns - ctx.epoch_ns);
  if (tag.traced) result.trace = ctx.trace.encode();
  trace_log_.record(std::move(ctx.trace));
  return result;
}

QueryResult ShardRouter::handle_line(const std::string& trimmed,
                                     TraceCtx* ctx) {
  try {
    if (trimmed == "metrics" || trimmed == "metrics json") {
      QueryResult result;
      if (trimmed == "metrics") {
        result.body = metrics().str();
      } else {
        util::JsonWriter json;
        json.begin_object();
        metrics().append_json(json);
        json.end_object();
        result.body = json.str();
      }
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "stats" || trimmed == "stats json" ||
        trimmed == "stats prom") {
      QueryResult result;
      if (trimmed == "stats prom") {
        result.body = registry_.prometheus_text();
      } else if (trimmed == "stats json") {
        util::JsonWriter json;
        json.begin_object();
        registry_.append_json(json);
        json.end_object();
        result.body = json.str();
      } else {
        result.body = registry_.str();
      }
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "trace on" || trimmed == "trace off") {
      set_trace_all(trimmed == "trace on");
      QueryResult result;
      result.body =
          std::string("tracing ") + (trimmed == "trace on" ? "on" : "off");
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (starts_with(trimmed, "trace last ")) {
      const long long n = parse_int(trim(trimmed.substr(11)));
      if (n < 0) throw Error("trace last: count must be non-negative");
      QueryResult result;
      result.body = trace_log_.json(static_cast<size_t>(n));
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "healthz") {
      const Health verdict = health();
      QueryResult result;
      result.ok = verdict.ok;
      result.body = verdict.detail;
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "diagnose" || starts_with(trimmed, "diagnose ")) {
      std::vector<std::string> args = split_ws(trimmed);
      bool json_output = false;
      size_t queries = 60;
      for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "json") {
          json_output = true;
          continue;
        }
        const long long n = parse_int(args[i]);
        if (n < 0) throw Error("diagnose: bad query count '" + args[i] + "'");
        queries = static_cast<size_t>(n);
      }
      const obs::DiagnosisReport report = diagnose(queries);
      QueryResult result;
      if (json_output) {
        util::JsonWriter json;
        report.append_json(json);
        result.body = json.str();
      } else {
        result.body = report.str();
      }
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "flight" || starts_with(trimmed, "flight ")) {
      obs::FlightRecorder* recorder = flight_recorder();
      if (recorder == nullptr) {
        throw Error("no flight recorder attached (route --flight-ms=N)");
      }
      std::vector<std::string> args = split_ws(trimmed);
      long long window_ms = 0;
      long long max_samples = 0;
      if (args.size() > 1) window_ms = parse_int(args[1]);
      if (args.size() > 2) max_samples = parse_int(args[2]);
      if (window_ms < 0 || max_samples < 0) {
        throw Error("flight: usage is `flight [window-ms] [max-samples]`");
      }
      const uint64_t now = obs::now_ns();
      const uint64_t span = static_cast<uint64_t>(window_ms) * 1'000'000u;
      const uint64_t start =
          window_ms == 0 ? 0 : (span >= now ? 0 : now - span);
      QueryResult result;
      result.body = recorder->json(start, ~uint64_t{0},
                                   static_cast<size_t>(max_samples));
      {
        std::lock_guard<std::mutex> history_lock(history_mutex_);
        result.version = head_version_;
      }
      return result;
    }
    if (trimmed == "shutdown") return handle_shutdown();
    if (starts_with(trimmed, "commit ") || trimmed == "commit") {
      return handle_commit(trimmed, ctx);
    }

    // Classify for routing; malformed lines fail here with the same parser
    // (and message) a monolithic service would use.
    const Query query = parse_query(trimmed);
    size_t target = 0;
    switch (query.kind) {
      case QueryKind::kReach:
      case QueryKind::kPaths:
        target = partition_.owner_of(query.src);
        break;
      case QueryKind::kCheck:
        if (query.invariant.kind == core::Invariant::Kind::kLoopFree) {
          if (query.scope_count > 1) {
            // Already scoped by the caller: any replica can evaluate it;
            // spread by the scope index.
            target = query.scope_index % shards_.size();
          } else if (shards_.size() > 1) {
            return handle_scatter(trimmed, ctx);
          }
        } else {
          target = partition_.owner_of(query.invariant.src);
        }
        break;
      case QueryKind::kWhatIf:
        // No source node to own a what-if; spread deterministically by the
        // request text (any replica previews the same answer).
        target = shard_of(trimmed, static_cast<uint32_t>(shards_.size()));
        break;
      case QueryKind::kVersion:
      case QueryKind::kHash:
        target = 0;
        break;
    }
    QueryResult result =
        request_observed(target, trimmed, /*retry_once=*/true, ctx);
    ctr_queries_routed_.add();
    return result;
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    return failed;
  }
}

Health ShardRouter::health() const {
  Health verdict;
  size_t connected = 0;
  std::vector<size_t> down;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> shard_lock(shards_[i]->mutex);
    if (shards_[i]->client != nullptr) {
      ++connected;
    } else {
      down.push_back(i);
    }
  }
  uint64_t head;
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    head = head_version_;
  }
  verdict.ok = connected == shards_.size();
  std::ostringstream detail;
  if (verdict.ok) {
    detail << "ok: " << connected << "/" << shards_.size()
           << " shards connected, head v" << head;
  } else {
    detail << "unhealthy: shard";
    for (const size_t index : down) detail << " " << index;
    detail << " down (" << connected << "/" << shards_.size()
           << " connected), head v" << head;
  }
  verdict.detail = detail.str();
  return verdict;
}

obs::DiagnosisReport ShardRouter::diagnose(size_t queries_per_phase) {
  obs::DiagnosisReport report;
  report.component = "router";
  const size_t threads = std::max<size_t>(2, shards_.size());
  report.threads = threads;
  // The network-global check: on a multi-shard deployment it scatters to
  // every shard, exercising the router's fan-out, the per-shard RTTs, and
  // the scatter serialization all at once.
  const std::string probe = "check loopfree";

  const auto hist_sum_seconds = [](const obs::Histogram& histogram) {
    return static_cast<double>(histogram.snapshot().sum) * 1e-9;
  };

  // Phase 1 — strictly sequential.
  const uint64_t seq_start_ns = obs::now_ns();
  for (size_t i = 0; i < queries_per_phase; ++i) handle(probe);
  report.queries_seq = queries_per_phase;
  report.seconds_seq =
      static_cast<double>(obs::elapsed_ns(seq_start_ns, obs::now_ns())) * 1e-9;

  // Leg baselines, so the attribution covers the flood phase only.
  const double wall0 = hist_sum_seconds(hist_request_);
  std::vector<double> rtt0(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    rtt0[i] = hist_sum_seconds(*hist_shard_rtt_[i]);
  }
  const uint64_t lock_wait0 = commit_mutex_.wait_ns();

  // Phase 2 — flooded.
  std::atomic<long long> remaining{
      static_cast<long long>(queries_per_phase)};
  const uint64_t flood_start_ns = obs::now_ns();
  std::vector<std::thread> submitters;
  submitters.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([this, &probe, &remaining] {
      for (;;) {
        if (remaining.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
        handle(probe);
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  report.queries_flood = queries_per_phase;
  report.seconds_flood =
      static_cast<double>(obs::elapsed_ns(flood_start_ns, obs::now_ns())) *
      1e-9;

  // Attribution: each request's wall time (hist_request_) decomposes into
  // the per-shard RTTs it waited on plus the router's own routing/merge
  // work — the remainder leg, which also absorbs scatter-lock waits.
  report.wall_seconds = hist_sum_seconds(hist_request_) - wall0;
  double rtt_total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const double rtt = hist_sum_seconds(*hist_shard_rtt_[i]) - rtt0[i];
    rtt_total += rtt;
    report.legs.push_back(
        {"shard " + std::to_string(i) + " rtt", rtt, 0});
  }
  report.legs.push_back(
      {"route (fan-out + merge)",
       std::max(0.0, report.wall_seconds - rtt_total), 0});
  report.lock_wait_seconds =
      static_cast<double>(commit_mutex_.wait_ns() - lock_wait0) * 1e-9;
  obs::finalize_diagnosis(report);
  return report;
}

RouterMetrics ShardRouter::metrics() const {
  RouterMetrics copy;
  copy.queries_routed = ctr_queries_routed_.value();
  copy.scatters = ctr_scatters_.value();
  copy.commits = ctr_commits_.value();
  copy.shard_errors = ctr_shard_errors_.value();
  copy.reconnects = ctr_reconnects_.value();
  copy.replayed_commits = ctr_replayed_commits_.value();
  {
    std::lock_guard<std::mutex> history_lock(history_mutex_);
    copy.head_version = head_version_;
  }
  copy.shard_connected.reserve(shards_.size());
  copy.shard_versions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    copy.shard_connected.push_back(shard->client != nullptr);
    copy.shard_versions.push_back(shard->version);
  }
  return copy;
}

std::string RouterMetrics::str() const {
  std::ostringstream out;
  size_t connected = 0;
  for (const bool up : shard_connected) connected += up ? 1 : 0;
  out << "router metrics:\n";
  out << "  shards: " << shard_connected.size() << " (" << connected
      << " connected), head version " << head_version << "\n";
  for (size_t i = 0; i < shard_connected.size(); ++i) {
    out << "  shard " << i << ": "
        << (shard_connected[i] ? "connected" : "down") << ", version "
        << shard_versions[i] << "\n";
  }
  out << "  queries: " << queries_routed << " routed, " << scatters
      << " scattered, " << shard_errors << " shard error(s)\n";
  out << "  commits: " << commits << " broadcast, " << replayed_commits
      << " replayed\n";
  out << "  reconnects: " << reconnects << "\n";
  return out.str();
}

void RouterMetrics::append_json(util::JsonWriter& json) const {
  json.key("metrics").begin_object();
  json.key("queries_routed").value(static_cast<unsigned long long>(
      queries_routed));
  json.key("scatters").value(static_cast<unsigned long long>(scatters));
  json.key("commits").value(static_cast<unsigned long long>(commits));
  json.key("shard_errors").value(static_cast<unsigned long long>(
      shard_errors));
  json.key("reconnects").value(static_cast<unsigned long long>(reconnects));
  json.key("replayed_commits").value(static_cast<unsigned long long>(
      replayed_commits));
  json.key("head_version").value(static_cast<unsigned long long>(
      head_version));
  json.key("shards").begin_array();
  for (size_t i = 0; i < shard_connected.size(); ++i) {
    json.begin_object();
    json.key("connected").value(static_cast<bool>(shard_connected[i]));
    json.key("version").value(static_cast<unsigned long long>(
        shard_versions[i]));
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void RouterSession::run() {
  char buffer[4096];
  try {
    for (;;) {
      const size_t count = transport_.recv(buffer, sizeof(buffer));
      if (count == 0) break;  // peer closed
      decoder_.feed(std::string_view(buffer, count));
      while (auto request = decoder_.next()) {
        QueryResult result = router_.handle(*request);
        if (router_.shutdown_requested()) shutdown_requested_ = true;
        std::string payload = encode_response(result);
        if (payload.size() > kMaxFramePayload) {
          result.ok = false;
          result.body = "response too large (" +
                        std::to_string(payload.size()) + " bytes)";
          payload = encode_response(result);
        }
        transport_.send(encode_frame(payload));
        if (shutdown_requested_) return;
      }
    }
  } catch (const std::exception& e) {
    DNA_WARN("router session terminated: " << e.what());
  }
}

}  // namespace dna::service::shard
