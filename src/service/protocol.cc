#include "service/protocol.h"

#include "util/error.h"
#include "util/strings.h"

namespace dna::service {

std::string encode_frame(std::string_view payload) {
  DNA_CHECK_MSG(payload.size() <= kMaxFramePayload, "frame payload too large");
  std::string frame = std::to_string(payload.size());
  frame += '\n';
  frame += payload;
  return frame;
}

void FrameDecoder::feed(std::string_view bytes) { buffer_ += bytes; }

std::optional<std::string> FrameDecoder::next() {
  // kMaxFramePayload (1 MiB) needs 7 decimal digits; a longer length line
  // is malformed outright. Bounding the digit count here also keeps the
  // accumulation below from ever overflowing size_t.
  constexpr size_t kMaxLengthDigits = 7;
  const size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) {
    // Even the length line is incomplete; bound how long it may grow.
    if (buffer_.size() > kMaxLengthDigits) {
      throw Error("malformed frame length");
    }
    return std::nullopt;
  }
  if (newline == 0 || newline > kMaxLengthDigits) {
    throw Error("malformed frame length");
  }
  size_t length = 0;
  for (size_t i = 0; i < newline; ++i) {
    const char c = buffer_[i];
    if (c < '0' || c > '9') throw Error("malformed frame length");
    length = length * 10 + static_cast<size_t>(c - '0');
  }
  if (length > kMaxFramePayload) throw Error("oversized frame");
  if (buffer_.size() < newline + 1 + length) return std::nullopt;
  std::string payload = buffer_.substr(newline + 1, length);
  buffer_.erase(0, newline + 1 + length);
  return payload;
}

std::string encode_response(const QueryResult& result) {
  std::string payload = result.ok ? "ok " : "err ";
  payload += std::to_string(result.version);
  if (!result.trace.empty()) {
    // Trace spans ride the status line so the body stays byte-identical to
    // an untraced evaluation (the shard/monolith equivalence tests compare
    // bodies). The encoding is a single whitespace-free token.
    payload += " trace ";
    payload += result.trace;
  }
  payload += '\n';
  payload += result.body;
  return payload;
}

QueryResult decode_response(const std::string& payload) {
  const size_t newline = payload.find('\n');
  const std::string status_line =
      newline == std::string::npos ? payload : payload.substr(0, newline);
  const std::vector<std::string> tokens = split_ws(status_line);
  const bool traced = tokens.size() == 4 && tokens[2] == "trace";
  if ((tokens.size() != 2 && !traced) ||
      (tokens[0] != "ok" && tokens[0] != "err")) {
    throw Error("malformed response status: " + status_line);
  }
  const long long version = parse_int(tokens[1]);
  if (version < 0) throw Error("malformed response version: " + status_line);

  QueryResult result;
  result.ok = tokens[0] == "ok";
  result.version = static_cast<uint64_t>(version);
  if (traced) result.trace = tokens[3];
  result.body = newline == std::string::npos ? "" : payload.substr(newline + 1);
  return result;
}

}  // namespace dna::service
