// Stratification: orders relations so negation is applied only to relations
// that are fully computed in an earlier stratum.
//
// Each stratum is one strongly connected component of the relation dependency
// graph (edges run body -> head), emitted in topological order. A stratum is
// recursive when its SCC has more than one relation or a relation that
// (transitively within the SCC) depends on itself.
#pragma once

#include <vector>

#include "datalog/ast.h"

namespace dna::datalog {

struct Stratum {
  std::vector<int> relations;  // relation ids in this stratum
  std::vector<int> rules;      // indices into Program::rules() with head here
  bool recursive = false;
};

struct Stratification {
  std::vector<Stratum> strata;   // topological order, EDB-only strata omitted
  std::vector<int> stratum_of;   // relation id -> stratum index; -1 for EDB
};

/// Computes strata; throws dna::Error if a negation occurs inside a cycle
/// (the program is not stratifiable).
Stratification stratify(const Program& program);

}  // namespace dna::datalog
