#include "datalog/ast.h"

#include <unordered_set>

#include "util/error.h"

namespace dna::datalog {

bool eval_cmp(CmpOp op, Value lhs, Value rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

const char* cmp_op_text(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {
std::string term_str(const Term& term) {
  if (term.is_var()) return "V" + std::to_string(term.var);
  return std::to_string(term.value);
}

std::string atom_str(const Atom& atom, const Program& program) {
  std::string out = program.relation(atom.relation).name + "(";
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i) out += ", ";
    out += term_str(atom.terms[i]);
  }
  return out + ")";
}
}  // namespace

std::string Rule::str(const Program& program, const Interner&) const {
  std::string out = atom_str(head, program) + " :- ";
  bool first = true;
  for (const Literal& lit : body) {
    if (!first) out += ", ";
    first = false;
    if (lit.negated) out += "!";
    out += atom_str(lit.atom, program);
  }
  for (const Comparison& cmp : comparisons) {
    if (!first) out += ", ";
    first = false;
    out += term_str(cmp.lhs);
    out += " ";
    out += cmp_op_text(cmp.op);
    out += " ";
    out += term_str(cmp.rhs);
  }
  return out + ".";
}

int Program::add_relation(const std::string& name, int arity, bool is_input) {
  if (relation_id(name) >= 0) {
    throw Error("relation redeclared: " + name);
  }
  relations_.push_back({name, arity, is_input});
  return static_cast<int>(relations_.size()) - 1;
}

int Program::relation_id(const std::string& name) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Program::validate() const {
  for (const Rule& rule : rules_) {
    auto check_atom = [&](const Atom& atom, const char* where) {
      if (atom.relation < 0 ||
          atom.relation >= static_cast<int>(relations_.size())) {
        throw Error(std::string("rule uses undeclared relation in ") + where);
      }
      const RelationDecl& decl = relations_[atom.relation];
      if (static_cast<int>(atom.terms.size()) != decl.arity) {
        throw Error("arity mismatch for " + decl.name + ": expected " +
                    std::to_string(decl.arity) + ", got " +
                    std::to_string(atom.terms.size()));
      }
    };

    check_atom(rule.head, "head");
    if (relations_[rule.head.relation].is_input) {
      throw Error("rule derives into input relation " +
                  relations_[rule.head.relation].name);
    }

    std::unordered_set<int> positive_vars;
    for (const Literal& lit : rule.body) {
      check_atom(lit.atom, "body");
      if (!lit.negated) {
        for (const Term& term : lit.atom.terms) {
          if (term.is_var()) positive_vars.insert(term.var);
        }
      }
    }

    auto require_bound = [&](const Term& term, const char* what) {
      if (term.is_var() && !positive_vars.count(term.var)) {
        throw Error(std::string(what) +
                    " uses a variable not bound by any positive body atom "
                    "(rule: " +
                    relations_[rule.head.relation].name + ")");
      }
    };

    for (const Term& term : rule.head.terms) require_bound(term, "head");
    for (const Literal& lit : rule.body) {
      if (!lit.negated) continue;
      for (const Term& term : lit.atom.terms) {
        require_bound(term, "negated literal");
      }
    }
    for (const Comparison& cmp : rule.comparisons) {
      require_bound(cmp.lhs, "comparison");
      require_bound(cmp.rhs, "comparison");
    }
  }
}

}  // namespace dna::datalog
