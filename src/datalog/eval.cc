#include "datalog/eval.h"

#include <algorithm>

#include "util/error.h"

namespace dna::datalog {

int64_t Relation::count(const Tuple& t) const {
  auto it = facts_.find(t);
  return it == facts_.end() ? 0 : it->second;
}

int Relation::add_count(const Tuple& t, int64_t delta) {
  if (delta == 0) return 0;
  auto [it, inserted] = facts_.try_emplace(t, 0);
  const int64_t before = it->second;
  it->second += delta;
  const int64_t after = it->second;
  DNA_CHECK_MSG(after >= 0, "derivation count went negative");
  if (after == 0) facts_.erase(it);
  if (before == 0 && after > 0) {
    for (Index& index : indexes_) index_insert(index, t);
    return +1;
  }
  if (before > 0 && after == 0) {
    for (Index& index : indexes_) index_erase(index, t);
    return -1;
  }
  return 0;
}

const std::vector<Tuple>* Relation::match(const std::vector<int>& cols,
                                          const Tuple& key) {
  for (Index& index : indexes_) {
    if (index.cols == cols) {
      auto it = index.buckets.find(key);
      return it == index.buckets.end() ? nullptr : &it->second;
    }
  }
  // Build the index on first use.
  indexes_.push_back({cols, {}});
  Index& index = indexes_.back();
  for (const auto& [tuple, cnt] : facts_) {
    (void)cnt;
    index_insert(index, tuple);
  }
  auto it = index.buckets.find(key);
  return it == index.buckets.end() ? nullptr : &it->second;
}

void Relation::clear() {
  facts_.clear();
  indexes_.clear();
}

void Relation::index_insert(Index& index, const Tuple& t) {
  Tuple key;
  key.reserve(index.cols.size());
  for (int c : index.cols) key.push_back(t[static_cast<size_t>(c)]);
  index.buckets[key].push_back(t);
}

void Relation::index_erase(Index& index, const Tuple& t) {
  Tuple key;
  key.reserve(index.cols.size());
  for (int c : index.cols) key.push_back(t[static_cast<size_t>(c)]);
  auto it = index.buckets.find(key);
  if (it == index.buckets.end()) return;
  auto& bucket = it->second;
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] == t) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      break;
    }
  }
  if (bucket.empty()) index.buckets.erase(it);
}

Database::Database(const Program& program) {
  relations_.reserve(program.relations().size());
  for (const RelationDecl& decl : program.relations()) {
    relations_.emplace_back(decl.arity);
  }
}

RulePlan make_plan(const Rule& rule) {
  RulePlan plan;
  plan.rule = &rule;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (!rule.body[i].negated) plan.order.push_back(static_cast<int>(i));
  }
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (rule.body[i].negated) plan.order.push_back(static_cast<int>(i));
  }

  // Attach each comparison to the earliest plan step after which both of its
  // sides are bound (constants are always bound).
  std::vector<bool> bound(static_cast<size_t>(rule.num_vars), false);
  plan.cmps_after.assign(plan.order.size(), {});
  std::vector<bool> attached(rule.comparisons.size(), false);
  for (size_t step = 0; step < plan.order.size(); ++step) {
    const Literal& lit = rule.body[static_cast<size_t>(plan.order[step])];
    if (!lit.negated) {
      for (const Term& term : lit.atom.terms) {
        if (term.is_var()) bound[static_cast<size_t>(term.var)] = true;
      }
    }
    for (size_t c = 0; c < rule.comparisons.size(); ++c) {
      if (attached[c]) continue;
      const Comparison& cmp = rule.comparisons[c];
      auto is_bound = [&](const Term& term) {
        return !term.is_var() || bound[static_cast<size_t>(term.var)];
      };
      if (is_bound(cmp.lhs) && is_bound(cmp.rhs)) {
        plan.cmps_after[step].push_back(static_cast<int>(c));
        attached[c] = true;
      }
    }
  }
  // Validation guarantees every comparison var is bound by a positive atom,
  // so everything must be attached by the end.
  for (bool a : attached) DNA_CHECK(a);
  return plan;
}

namespace {

/// In-flight variable assignment while enumerating a rule's bindings.
struct Binding {
  std::vector<Value> values;
  std::vector<bool> bound;

  explicit Binding(int num_vars)
      : values(static_cast<size_t>(num_vars), 0),
        bound(static_cast<size_t>(num_vars), false) {}
};

/// Binds `tuple` against `atom`; records newly bound vars in `trail` so the
/// caller can unwind. Returns false (leaving a partial trail) on mismatch.
bool try_bind(const Atom& atom, const Tuple& tuple, Binding& binding,
              std::vector<int>& trail) {
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    if (term.is_var()) {
      const size_t v = static_cast<size_t>(term.var);
      if (binding.bound[v]) {
        if (binding.values[v] != tuple[i]) return false;
      } else {
        binding.bound[v] = true;
        binding.values[v] = tuple[i];
        trail.push_back(term.var);
      }
    } else if (term.value != tuple[i]) {
      return false;
    }
  }
  return true;
}

void unwind(Binding& binding, std::vector<int>& trail, size_t mark) {
  while (trail.size() > mark) {
    binding.bound[static_cast<size_t>(trail.back())] = false;
    trail.pop_back();
  }
}

/// Builds the ground tuple of `atom` under a binding where all of the atom's
/// variables are bound. Returns false if some variable is unbound (possible
/// only for malformed plans; validation prevents it for negated atoms).
bool ground_atom(const Atom& atom, const Binding& binding, Tuple& out) {
  out.clear();
  out.reserve(atom.terms.size());
  for (const Term& term : atom.terms) {
    if (term.is_var()) {
      const size_t v = static_cast<size_t>(term.var);
      if (!binding.bound[v]) return false;
      out.push_back(binding.values[v]);
    } else {
      out.push_back(term.value);
    }
  }
  return true;
}

const RelationDelta* find_delta(const BatchDeltas& deltas, int rel) {
  auto it = deltas.find(rel);
  return it == deltas.end() ? nullptr : &it->second;
}

/// Membership in the pre-batch state of a relation.
bool contains_old(Database& db, const BatchDeltas& deltas, int rel,
                  const Tuple& t) {
  const RelationDelta* delta = find_delta(deltas, rel);
  if (delta) {
    if (delta->added_set.count(t)) return false;   // added this batch
    if (delta->removed_set.count(t)) return true;  // removed this batch
  }
  return db.rel(rel).contains(t);
}

class PlanEvaluator {
 public:
  PlanEvaluator(Database& db, const BatchDeltas& deltas, const RulePlan& plan,
                const std::vector<PositionSource>& sources,
                const std::function<void(const Tuple&)>& sink)
      : db_(db),
        deltas_(deltas),
        plan_(plan),
        sources_(sources),
        sink_(sink),
        binding_(plan.rule->num_vars) {
    DNA_CHECK(sources.size() == plan.steps());
  }

  void run(const Tuple* restrict_head) {
    if (restrict_head) {
      std::vector<int> trail;
      if (!try_bind(plan_.rule->head, *restrict_head, binding_, trail)) {
        return;
      }
      head_override_ = restrict_head;
    }
    descend(0);
  }

 private:
  bool comparisons_hold(size_t step) const {
    for (int c : plan_.cmps_after[step]) {
      const Comparison& cmp =
          plan_.rule->comparisons[static_cast<size_t>(c)];
      auto value_of = [&](const Term& term) {
        return term.is_var() ? binding_.values[static_cast<size_t>(term.var)]
                             : term.value;
      };
      if (!eval_cmp(cmp.op, value_of(cmp.lhs), value_of(cmp.rhs))) {
        return false;
      }
    }
    return true;
  }

  void descend(size_t step) {
    if (step == plan_.steps()) {
      Tuple head;
      if (head_override_) {
        head = *head_override_;
      } else {
        DNA_CHECK(ground_atom(plan_.rule->head, binding_, head));
      }
      sink_(head);
      return;
    }

    const Literal& lit = plan_.literal(step);
    const PositionSource& source = sources_[step];
    const int rel = lit.atom.relation;

    if (lit.negated) {
      Tuple t;
      DNA_CHECK_MSG(ground_atom(lit.atom, binding_, t),
                    "negated atom with unbound variable");
      bool pass = false;
      switch (source.kind) {
        case PositionSource::Kind::kState:
          pass = !db_.rel(rel).contains(t);
          break;
        case PositionSource::Kind::kOldState:
          pass = !contains_old(db_, deltas_, rel, t);
          break;
        case PositionSource::Kind::kAddedOf: {
          const RelationDelta* delta = find_delta(deltas_, rel);
          pass = delta && delta->added_set.count(t) > 0;
          break;
        }
        case PositionSource::Kind::kRemovedOf: {
          const RelationDelta* delta = find_delta(deltas_, rel);
          pass = delta && delta->removed_set.count(t) > 0;
          break;
        }
        case PositionSource::Kind::kList:
          DNA_CHECK_MSG(false, "kList source on a negated literal");
      }
      if (pass && comparisons_hold(step)) descend(step + 1);
      return;
    }

    // Positive literal: enumerate candidate tuples from the source.
    switch (source.kind) {
      case PositionSource::Kind::kState:
        enumerate_state(step, lit);
        break;
      case PositionSource::Kind::kOldState:
        enumerate_old_state(step, lit);
        break;
      case PositionSource::Kind::kAddedOf: {
        const RelationDelta* delta = find_delta(deltas_, rel);
        if (delta) enumerate_list(step, lit, delta->added);
        break;
      }
      case PositionSource::Kind::kRemovedOf: {
        const RelationDelta* delta = find_delta(deltas_, rel);
        if (delta) enumerate_list(step, lit, delta->removed);
        break;
      }
      case PositionSource::Kind::kList:
        DNA_CHECK(source.list != nullptr);
        enumerate_list(step, lit, *source.list);
        break;
    }
  }

  /// The (sorted) bound columns of the atom under the current binding,
  /// together with the lookup key they induce.
  void bound_columns(const Atom& atom, std::vector<int>& cols,
                     Tuple& key) const {
    cols.clear();
    key.clear();
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& term = atom.terms[i];
      if (term.is_var()) {
        const size_t v = static_cast<size_t>(term.var);
        if (binding_.bound[v]) {
          cols.push_back(static_cast<int>(i));
          key.push_back(binding_.values[v]);
        }
      } else {
        cols.push_back(static_cast<int>(i));
        key.push_back(term.value);
      }
    }
  }

  void try_candidate(size_t step, const Literal& lit, const Tuple& tuple) {
    std::vector<int> trail;
    if (try_bind(lit.atom, tuple, binding_, trail) && comparisons_hold(step)) {
      descend(step + 1);
    }
    unwind(binding_, trail, 0);
  }

  void enumerate_state(size_t step, const Literal& lit) {
    std::vector<int> cols;
    Tuple key;
    bound_columns(lit.atom, cols, key);
    const std::vector<Tuple>* bucket = db_.rel(lit.atom.relation).match(cols, key);
    if (!bucket) return;
    // The bucket may be mutated if a nested step touches the same index; the
    // engine never mutates during evaluation, so iteration is safe.
    for (const Tuple& tuple : *bucket) try_candidate(step, lit, tuple);
  }

  void enumerate_old_state(size_t step, const Literal& lit) {
    const int rel = lit.atom.relation;
    const RelationDelta* delta = find_delta(deltas_, rel);
    std::vector<int> cols;
    Tuple key;
    bound_columns(lit.atom, cols, key);
    const std::vector<Tuple>* bucket = db_.rel(rel).match(cols, key);
    if (bucket) {
      for (const Tuple& tuple : *bucket) {
        if (delta && delta->added_set.count(tuple)) continue;  // not in old
        try_candidate(step, lit, tuple);
      }
    }
    if (delta) {
      // Removed tuples were in the old state; filter them by the bound key.
      for (const Tuple& tuple : delta->removed) {
        bool key_matches = true;
        for (size_t k = 0; k < cols.size(); ++k) {
          if (tuple[static_cast<size_t>(cols[k])] != key[k]) {
            key_matches = false;
            break;
          }
        }
        if (key_matches) try_candidate(step, lit, tuple);
      }
    }
  }

  void enumerate_list(size_t step, const Literal& lit,
                      const std::vector<Tuple>& list) {
    for (const Tuple& tuple : list) try_candidate(step, lit, tuple);
  }

  Database& db_;
  const BatchDeltas& deltas_;
  const RulePlan& plan_;
  const std::vector<PositionSource>& sources_;
  const std::function<void(const Tuple&)>& sink_;
  Binding binding_;
  const Tuple* head_override_ = nullptr;
};

}  // namespace

void evaluate_plan(Database& db, const BatchDeltas& deltas,
                   const RulePlan& plan,
                   const std::vector<PositionSource>& sources,
                   const std::function<void(const Tuple&)>& sink,
                   const Tuple* restrict_head) {
  PlanEvaluator(db, deltas, plan, sources, sink).run(restrict_head);
}

void evaluate_program(Database& db, const Program& program,
                      const Stratification& strat) {
  static const BatchDeltas kNoDeltas;

  // Clear IDB relations.
  for (size_t rel = 0; rel < program.relations().size(); ++rel) {
    if (!program.relation(static_cast<int>(rel)).is_input) {
      db.rel(static_cast<int>(rel)).clear();
    }
  }

  for (const Stratum& stratum : strat.strata) {
    std::vector<RulePlan> plans;
    plans.reserve(stratum.rules.size());
    for (int ri : stratum.rules) {
      plans.push_back(make_plan(program.rules()[static_cast<size_t>(ri)]));
    }

    if (!stratum.recursive) {
      // Exact derivation counts via a single pass per rule.
      for (const RulePlan& plan : plans) {
        std::vector<PositionSource> sources(plan.steps());
        evaluate_plan(db, kNoDeltas, plan, sources, [&](const Tuple& head) {
          db.rel(plan.rule->head.relation).add_count(head, +1);
        });
      }
      continue;
    }

    // Recursive stratum: semi-naive iteration with set semantics.
    std::unordered_set<int> in_stratum(stratum.relations.begin(),
                                       stratum.relations.end());
    std::unordered_map<int, std::vector<Tuple>> delta;
    for (int rel : stratum.relations) delta[rel] = {};

    // Derivations are buffered per pass and applied afterwards: the sink
    // must not mutate a relation while evaluate_plan may be iterating one of
    // its index buckets (recursive rules read the head relation).
    std::vector<std::pair<int, Tuple>> derived;

    // Round zero: full evaluation (same-stratum relations start empty).
    for (const RulePlan& plan : plans) {
      std::vector<PositionSource> sources(plan.steps());
      evaluate_plan(db, kNoDeltas, plan, sources, [&](const Tuple& head) {
        derived.emplace_back(plan.rule->head.relation, head);
      });
    }
    for (auto& [rel, head] : derived) {
      if (!db.rel(rel).contains(head)) {
        db.rel(rel).add_count(head, +1);
        delta[rel].push_back(head);
      }
    }

    while (true) {
      derived.clear();
      for (const RulePlan& plan : plans) {
        for (size_t step = 0; step < plan.steps(); ++step) {
          const Literal& lit = plan.literal(step);
          if (lit.negated || !in_stratum.count(lit.atom.relation)) continue;
          const std::vector<Tuple>& dl = delta[lit.atom.relation];
          if (dl.empty()) continue;
          std::vector<PositionSource> sources(plan.steps());
          sources[step] = {PositionSource::Kind::kList, &dl};
          evaluate_plan(db, kNoDeltas, plan, sources, [&](const Tuple& head) {
            derived.emplace_back(plan.rule->head.relation, head);
          });
        }
      }
      std::unordered_map<int, std::vector<Tuple>> next_delta;
      for (int rel : stratum.relations) next_delta[rel] = {};
      bool any = false;
      for (auto& [rel, head] : derived) {
        if (!db.rel(rel).contains(head)) {
          db.rel(rel).add_count(head, +1);
          next_delta[rel].push_back(head);
          any = true;
        }
      }
      if (!any) break;
      delta = std::move(next_delta);
    }
  }
}

}  // namespace dna::datalog
