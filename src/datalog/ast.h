// Datalog abstract syntax: terms, atoms, rules, programs.
//
// Values are 64-bit integers; symbolic constants are interned strings whose
// Symbol is stored in the value (tagged by the engine's interner). Variables
// are rule-local dense ids assigned by the parser / builder.
#pragma once

#include <string>
#include <vector>

#include "dataflow/row.h"
#include "util/interner.h"

namespace dna::datalog {

using Value = dataflow::Value;
using Tuple = dataflow::Row;
using TupleHash = dataflow::RowHash;

struct Term {
  enum class Kind { kVar, kConst };

  Kind kind = Kind::kConst;
  int var = -1;     // valid when kind == kVar
  Value value = 0;  // valid when kind == kConst

  static Term make_var(int id) { return {Kind::kVar, id, 0}; }
  static Term make_const(Value v) { return {Kind::kConst, -1, v}; }

  bool is_var() const { return kind == Kind::kVar; }
  bool operator==(const Term&) const = default;
};

struct Atom {
  int relation = -1;  // index into Program::relations
  std::vector<Term> terms;
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

bool eval_cmp(CmpOp op, Value lhs, Value rhs);
const char* cmp_op_text(CmpOp op);

/// A builtin constraint; both sides must be bound by positive atoms.
struct Comparison {
  CmpOp op = CmpOp::kEq;
  Term lhs;
  Term rhs;
};

/// One body literal in evaluation order: a (possibly negated) atom.
struct Literal {
  Atom atom;
  bool negated = false;
};

struct Rule {
  Atom head;
  std::vector<Literal> body;
  std::vector<Comparison> comparisons;
  int num_vars = 0;

  /// Human-readable form, for diagnostics.
  std::string str(const class Program& program, const Interner& interner) const;
};

struct RelationDecl {
  std::string name;
  int arity = 0;
  bool is_input = false;  // EDB relations receive facts from outside
};

/// A validated datalog program. Build via parser.h or programmatically and
/// then call validate() before evaluation.
class Program {
 public:
  int add_relation(const std::string& name, int arity, bool is_input);

  /// Index of a declared relation, or -1.
  int relation_id(const std::string& name) const;

  const RelationDecl& relation(int id) const { return relations_.at(id); }
  const std::vector<RelationDecl>& relations() const { return relations_; }

  void add_rule(Rule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Checks arity agreement, range restriction (every head variable occurs
  /// in a positive body atom), safety of negation and comparisons, and that
  /// no rule derives into an input relation. Throws dna::Error on failure.
  void validate() const;

 private:
  std::vector<RelationDecl> relations_;
  std::vector<Rule> rules_;
};

}  // namespace dna::datalog
