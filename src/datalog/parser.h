// Textual datalog syntax.
//
//   .decl edge(2) input        // EDB relation, arity 2
//   .decl reach(2)             // IDB relation
//   reach(X, Y) :- edge(X, Y).
//   reach(X, Z) :- reach(X, Y), edge(Y, Z).
//   island(X, Y) :- node(X), node(Y), !reach(X, Y), X != Y.
//   edge(1, 2).                // ground fact (EDB only)
//
// Variables start with an uppercase letter; `_` is an anonymous variable.
// Constants are integers, "quoted strings", or bare lowercase identifiers
// (both string forms are interned through the supplied Interner).
// Comments run from `//` or `#` to end of line.
#pragma once

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/interner.h"

namespace dna::datalog {

struct ParsedProgram {
  Program program;
  /// Ground facts that appeared in the text, to be inserted after engine
  /// construction: (relation id, tuple).
  std::vector<std::pair<int, Tuple>> facts;
};

/// Parses and validates a program. Interned constants are registered in
/// `interner` so callers can translate values back to strings.
/// Throws dna::ParseError (with line numbers) or dna::Error on invalid input.
ParsedProgram parse_program(const std::string& text, Interner& interner);

}  // namespace dna::datalog
