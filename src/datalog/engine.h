// Public facade of the differential datalog engine.
//
//   DatalogEngine eng(R"(
//     .decl edge(2) input
//     .decl reach(2)
//     reach(X, Y) :- edge(X, Y).
//     reach(X, Z) :- reach(X, Y), edge(Y, Z).
//   )");
//   eng.insert("edge", {1, 2});
//   eng.insert("edge", {2, 3});
//   eng.flush();
//   eng.contains("reach", {1, 3});   // true
//   eng.remove("edge", {2, 3});
//   eng.flush();
//   eng.changes("reach").removed;    // {1,3} and {2,3} disappeared
//
// Strategies:
//   kIncremental          counting for non-recursive strata, DRed for
//                         recursive ones (the default; the paper's approach)
//   kIncrementalForceDRed DRed everywhere (ablation arm of experiment F6)
//   kRecompute            re-evaluate from scratch on every flush and diff
//                         (the monolithic baseline)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "datalog/incremental.h"
#include "datalog/parser.h"

namespace dna::datalog {

class DatalogEngine {
 public:
  enum class Strategy { kIncremental, kIncrementalForceDRed, kRecompute };

  /// Parses, validates and stratifies `program_text`; loads any ground facts
  /// it contains. Throws dna::ParseError / dna::Error on bad programs.
  explicit DatalogEngine(const std::string& program_text,
                         Strategy strategy = Strategy::kIncremental);

  /// Builds the engine from an already-constructed program.
  explicit DatalogEngine(Program program,
                         Strategy strategy = Strategy::kIncremental);

  const Program& program() const { return program_; }
  Strategy strategy() const { return strategy_; }

  /// Interns a string constant, returning the value to place in tuples.
  Value sym(std::string_view text) { return interner_.intern(text); }
  const Interner& interner() const { return interner_; }

  /// Relation id for a declared name; throws if unknown.
  int relation_id(const std::string& name) const;

  /// Queue an EDB change for the next flush(). Inserting a present tuple or
  /// removing an absent one is a no-op (set semantics); an insert+remove of
  /// the same tuple within one batch cancels.
  void insert(int rel, Tuple tuple);
  void insert(const std::string& rel, Tuple tuple);
  void remove(int rel, Tuple tuple);
  void remove(const std::string& rel, Tuple tuple);

  /// Applies all queued changes according to the strategy and records the
  /// per-relation set changes (see changes()).
  void flush();

  bool contains(int rel, const Tuple& tuple) const;
  bool contains(const std::string& rel, const Tuple& tuple) const;
  size_t size(int rel) const { return db_.rel(rel).size(); }
  size_t size(const std::string& rel) const;

  /// All tuples of a relation, sorted (deterministic across strategies).
  std::vector<Tuple> rows(int rel) const;
  std::vector<Tuple> rows(const std::string& rel) const;

  struct Changes {
    std::vector<Tuple> added;
    std::vector<Tuple> removed;
  };

  /// Set-level changes of the given relation during the last flush().
  const Changes& changes(int rel) const;
  const Changes& changes(const std::string& rel) const;

 private:
  void init();
  void flush_incremental(bool force_dred);
  void flush_recompute();

  /// Reduces the queued operations to net inserts/removes vs the database.
  void net_pending(std::vector<std::pair<int, Tuple>>& inserts,
                   std::vector<std::pair<int, Tuple>>& removes);

  Program program_;
  Strategy strategy_;
  Interner interner_;
  Stratification strat_;
  Database db_;
  std::unique_ptr<IncrementalMaintainer> maintainer_;

  struct PendingOp {
    int rel;
    Tuple tuple;
    bool is_insert;
  };
  std::vector<PendingOp> pending_;
  std::vector<Changes> last_changes_;  // by relation id
};

}  // namespace dna::datalog
