// Evaluation core shared by full (from-scratch) and incremental maintenance.
//
// Storage: each Relation keeps its facts with a derivation count plus
// on-demand hash indexes keyed by column subsets. The evaluator enumerates
// rule bindings left-to-right over a precomputed plan (positive literals
// first), where every body position draws from a configurable source:
//
//   kState     — the relation's current contents,
//   kOldState  — the pre-batch contents, reconstructed from a RelationDelta,
//   kAddedOf / kRemovedOf — just the batch's added / removed tuples,
//   kList      — an explicit tuple list (semi-naive recursion deltas).
//
// This one mechanism expresses naive evaluation, semi-naive fixpoints,
// counting delta-joins and DRed over-deletion/re-derivation.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/ast.h"
#include "datalog/stratify.h"
#include "util/flat_map.h"

namespace dna::datalog {

using TupleSet = std::unordered_set<Tuple, TupleHash>;
/// Fact storage rides the same open-addressing map as the dataflow
/// operators (util/flat_map.h): counts and index buckets are probed on
/// every derivation, and the node-based std::unordered_map spent the
/// evaluator's time in the allocator. Mutation discipline matches the
/// FlatMap contract — the evaluator never mutates a relation while a plan
/// enumeration is iterating it (sinks buffer; see evaluate_program).
using CountMap = util::FlatMap<Tuple, int64_t, TupleHash>;

/// Indexed fact storage for one relation.
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {}

  int arity() const { return arity_; }
  bool contains(const Tuple& t) const { return facts_.count(t) > 0; }
  int64_t count(const Tuple& t) const;
  size_t size() const { return facts_.size(); }
  const CountMap& facts() const { return facts_; }

  /// Adjusts the derivation count of `t` by `delta`.
  /// Returns +1 if the tuple appeared, -1 if it disappeared, 0 otherwise.
  /// Throws if the count would go negative.
  int add_count(const Tuple& t, int64_t delta);

  /// All tuples whose projection onto `cols` equals `key`. `cols` must be
  /// sorted ascending; an empty `cols` matches everything. The underlying
  /// index is built on first use and maintained incrementally afterwards.
  const std::vector<Tuple>* match(const std::vector<int>& cols,
                                  const Tuple& key);

  void clear();

 private:
  struct Index {
    std::vector<int> cols;
    util::FlatMap<Tuple, std::vector<Tuple>, TupleHash> buckets;
  };

  void index_insert(Index& index, const Tuple& t);
  void index_erase(Index& index, const Tuple& t);

  int arity_;
  CountMap facts_;
  std::vector<Index> indexes_;
};

/// The set-level changes a batch made to one relation.
struct RelationDelta {
  std::vector<Tuple> added;
  std::vector<Tuple> removed;
  TupleSet added_set;
  TupleSet removed_set;

  bool empty() const { return added.empty() && removed.empty(); }
  void add_added(const Tuple& t) {
    if (added_set.insert(t).second) added.push_back(t);
  }
  void add_removed(const Tuple& t) {
    if (removed_set.insert(t).second) removed.push_back(t);
  }
};

/// Batch views for every relation touched by the current update.
using BatchDeltas = std::unordered_map<int, RelationDelta>;

/// All relations of a program, indexed by relation id.
class Database {
 public:
  explicit Database(const Program& program);

  Relation& rel(int id) { return relations_[static_cast<size_t>(id)]; }
  const Relation& rel(int id) const {
    return relations_[static_cast<size_t>(id)];
  }
  size_t num_relations() const { return relations_.size(); }

 private:
  std::vector<Relation> relations_;
};

/// Where one plan position draws its tuples from.
struct PositionSource {
  enum class Kind { kState, kOldState, kAddedOf, kRemovedOf, kList };
  Kind kind = Kind::kState;
  const std::vector<Tuple>* list = nullptr;  // for kList
};

/// A rule with body positions reordered for evaluation: positive literals
/// first (stable), then negated ones, with comparisons attached to the
/// earliest position after which they are fully bound.
struct RulePlan {
  const Rule* rule = nullptr;
  std::vector<int> order;  // plan step -> body index
  // Comparisons checked right after each plan step (indices into
  // rule->comparisons). Comparisons bound before any step are at entry 0's
  // pre-check list.
  std::vector<std::vector<int>> cmps_after;

  size_t steps() const { return order.size(); }
  const Literal& literal(size_t step) const {
    return rule->body[static_cast<size_t>(order[step])];
  }
};

RulePlan make_plan(const Rule& rule);

/// Enumerates all bindings of `plan` and calls `sink` with the instantiated
/// head tuple once per binding.
///
/// `sources` has one entry per plan step. `deltas` supplies the old-state /
/// added / removed views for relations (kState needs none). If
/// `restrict_head` is non-null, the head variables are pre-bound from that
/// tuple so only derivations of exactly that head are enumerated.
void evaluate_plan(Database& db, const BatchDeltas& deltas,
                   const RulePlan& plan,
                   const std::vector<PositionSource>& sources,
                   const std::function<void(const Tuple&)>& sink,
                   const Tuple* restrict_head = nullptr);

/// From-scratch evaluation: clears every IDB relation, then evaluates the
/// strata in order. Non-recursive strata get exact derivation counts;
/// recursive strata use set semantics (count 1) via semi-naive iteration.
void evaluate_program(Database& db, const Program& program,
                      const Stratification& strat);

}  // namespace dna::datalog
