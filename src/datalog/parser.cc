#include "datalog/parser.h"

#include <cctype>
#include <map>

#include "util/error.h"
#include "util/strings.h"

namespace dna::datalog {

namespace {

struct Token {
  enum class Kind {
    kIdent,    // foo, Bar, _
    kInt,      // 42, -7
    kString,   // "quoted"
    kPunct,    // ( ) , . :- ! != == < <= > >=
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token tok = current_;
    advance();
    return tok;
  }

 private:
  void advance() {
    skip_space_and_comments();
    current_.line = line_;
    if (pos_ >= text_.size()) {
      current_ = {Token::Kind::kEnd, "", line_};
      return;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_ = {Token::Kind::kIdent, text_.substr(start, pos_ - start),
                  line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      size_t start = pos_++;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      current_ = {Token::Kind::kInt, text_.substr(start, pos_ - start), line_};
      return;
    }
    if (c == '"') {
      size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) throw ParseError("unterminated string", line_);
      current_ = {Token::Kind::kString, text_.substr(start, pos_ - start),
                  line_};
      ++pos_;
      return;
    }
    // Multi-char punctuation first.
    static const char* two_char[] = {":-", "!=", "==", "<=", ">="};
    for (const char* p : two_char) {
      if (text_.compare(pos_, 2, p) == 0) {
        current_ = {Token::Kind::kPunct, p, line_};
        pos_ += 2;
        return;
      }
    }
    static const std::string one_char = "(),.!<>=";
    if (one_char.find(c) != std::string::npos) {
      current_ = {Token::Kind::kPunct, std::string(1, c), line_};
      ++pos_;
      return;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", line_);
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '#' ||
                 (c == '/' && pos_ + 1 < text_.size() &&
                  text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

class Parser {
 public:
  Parser(const std::string& text, Interner& interner)
      : lexer_(text), interner_(interner) {}

  ParsedProgram parse() {
    while (lexer_.peek().kind != Token::Kind::kEnd) {
      if (lexer_.peek().kind == Token::Kind::kPunct &&
          lexer_.peek().text == ".") {
        // ".decl" arrives as punct '.' then ident 'decl'.
        lexer_.take();
        expect_ident("decl");
        parse_decl();
      } else {
        parse_clause();
      }
    }
    result_.program.validate();
    return std::move(result_);
  }

 private:
  void expect_punct(const std::string& text) {
    Token tok = lexer_.take();
    if (tok.kind != Token::Kind::kPunct || tok.text != text) {
      throw ParseError("expected '" + text + "', got '" + tok.text + "'",
                       tok.line);
    }
  }

  void expect_ident(const std::string& text) {
    Token tok = lexer_.take();
    if (tok.kind != Token::Kind::kIdent || tok.text != text) {
      throw ParseError("expected '" + text + "', got '" + tok.text + "'",
                       tok.line);
    }
  }

  void parse_decl() {
    Token name = lexer_.take();
    if (name.kind != Token::Kind::kIdent) {
      throw ParseError("expected relation name", name.line);
    }
    expect_punct("(");
    Token arity = lexer_.take();
    if (arity.kind != Token::Kind::kInt) {
      throw ParseError("expected arity", arity.line);
    }
    expect_punct(")");
    bool is_input = false;
    if (lexer_.peek().kind == Token::Kind::kIdent &&
        lexer_.peek().text == "input") {
      lexer_.take();
      is_input = true;
    }
    long long arity_value = parse_int(arity.text);
    if (arity_value < 0 || arity_value > 64) {
      throw ParseError("bad arity: " + arity.text, arity.line);
    }
    result_.program.add_relation(name.text, static_cast<int>(arity_value),
                                 is_input);
  }

  /// A clause is either a ground fact `rel(c, ...).` or a rule with `:-`.
  void parse_clause() {
    vars_.clear();
    num_vars_ = 0;
    Atom head = parse_atom();
    Token next = lexer_.take();
    if (next.kind == Token::Kind::kPunct && next.text == ".") {
      add_fact(head, next.line);
      return;
    }
    if (!(next.kind == Token::Kind::kPunct && next.text == ":-")) {
      throw ParseError("expected '.' or ':-' after head", next.line);
    }
    Rule rule;
    rule.head = head;
    for (;;) {
      parse_body_element(rule);
      Token sep = lexer_.take();
      if (sep.kind == Token::Kind::kPunct && sep.text == ",") continue;
      if (sep.kind == Token::Kind::kPunct && sep.text == ".") break;
      throw ParseError("expected ',' or '.' in rule body", sep.line);
    }
    rule.num_vars = num_vars_;
    result_.program.add_rule(std::move(rule));
  }

  void parse_body_element(Rule& rule) {
    // Negated atom?
    if (lexer_.peek().kind == Token::Kind::kPunct &&
        lexer_.peek().text == "!") {
      lexer_.take();
      rule.body.push_back({parse_atom(), /*negated=*/true});
      return;
    }
    // Lookahead: "ident (" is an atom; otherwise a comparison.
    Token first = lexer_.take();
    if (first.kind == Token::Kind::kIdent &&
        lexer_.peek().kind == Token::Kind::kPunct &&
        lexer_.peek().text == "(") {
      rule.body.push_back({parse_atom_after_name(first), /*negated=*/false});
      return;
    }
    // Comparison: term op term.
    Term lhs = token_to_term(first);
    Token op = lexer_.take();
    if (op.kind != Token::Kind::kPunct) {
      throw ParseError("expected comparison operator", op.line);
    }
    static const std::map<std::string, CmpOp> ops = {
        {"==", CmpOp::kEq}, {"=", CmpOp::kEq},  {"!=", CmpOp::kNe},
        {"<", CmpOp::kLt},  {"<=", CmpOp::kLe}, {">", CmpOp::kGt},
        {">=", CmpOp::kGe}};
    auto it = ops.find(op.text);
    if (it == ops.end()) {
      throw ParseError("unknown comparison operator '" + op.text + "'",
                       op.line);
    }
    Term rhs = token_to_term(lexer_.take());
    rule.comparisons.push_back({it->second, lhs, rhs});
  }

  Atom parse_atom() {
    Token name = lexer_.take();
    if (name.kind != Token::Kind::kIdent) {
      throw ParseError("expected relation name, got '" + name.text + "'",
                       name.line);
    }
    return parse_atom_after_name(name);
  }

  Atom parse_atom_after_name(const Token& name) {
    int rel = result_.program.relation_id(name.text);
    if (rel < 0) {
      throw ParseError("undeclared relation '" + name.text + "'", name.line);
    }
    Atom atom;
    atom.relation = rel;
    expect_punct("(");
    if (lexer_.peek().kind == Token::Kind::kPunct &&
        lexer_.peek().text == ")") {
      lexer_.take();
      return atom;
    }
    for (;;) {
      atom.terms.push_back(token_to_term(lexer_.take()));
      Token sep = lexer_.take();
      if (sep.kind == Token::Kind::kPunct && sep.text == ",") continue;
      if (sep.kind == Token::Kind::kPunct && sep.text == ")") break;
      throw ParseError("expected ',' or ')' in atom", sep.line);
    }
    return atom;
  }

  Term token_to_term(const Token& tok) {
    switch (tok.kind) {
      case Token::Kind::kInt:
        return Term::make_const(std::stoll(tok.text));
      case Token::Kind::kString:
        return Term::make_const(
            static_cast<Value>(interner_.intern(tok.text)));
      case Token::Kind::kIdent: {
        if (tok.text == "_") {
          return Term::make_var(num_vars_++);  // fresh anonymous variable
        }
        if (std::isupper(static_cast<unsigned char>(tok.text[0]))) {
          auto [it, inserted] = vars_.try_emplace(tok.text, num_vars_);
          if (inserted) ++num_vars_;
          return Term::make_var(it->second);
        }
        // Bare lowercase identifier: symbolic constant.
        return Term::make_const(static_cast<Value>(interner_.intern(tok.text)));
      }
      default:
        throw ParseError("expected a term, got '" + tok.text + "'", tok.line);
    }
  }

  void add_fact(const Atom& atom, int line) {
    const RelationDecl& decl = result_.program.relation(atom.relation);
    if (!decl.is_input) {
      throw ParseError("ground facts are only allowed for input relations",
                       line);
    }
    Tuple tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& term : atom.terms) {
      if (term.is_var()) {
        throw ParseError("ground fact contains a variable", line);
      }
      tuple.push_back(term.value);
    }
    result_.facts.emplace_back(atom.relation, std::move(tuple));
  }

  Lexer lexer_;
  Interner& interner_;
  ParsedProgram result_;
  std::map<std::string, int> vars_;
  int num_vars_ = 0;
};

}  // namespace

ParsedProgram parse_program(const std::string& text, Interner& interner) {
  return Parser(text, interner).parse();
}

}  // namespace dna::datalog
