#include "datalog/incremental.h"

#include <algorithm>

#include "util/error.h"

namespace dna::datalog {

IncrementalMaintainer::IncrementalMaintainer(const Program& program,
                                             const Stratification& strat,
                                             Database& db)
    : program_(program), strat_(strat), db_(db) {
  plans_.reserve(strat.strata.size());
  for (const Stratum& stratum : strat.strata) {
    std::vector<RulePlan> plans;
    plans.reserve(stratum.rules.size());
    for (int ri : stratum.rules) {
      plans.push_back(make_plan(program.rules()[static_cast<size_t>(ri)]));
    }
    plans_.push_back(std::move(plans));
  }
}

BatchDeltas IncrementalMaintainer::apply(
    const std::vector<std::pair<int, Tuple>>& edb_inserts,
    const std::vector<std::pair<int, Tuple>>& edb_removes, bool force_dred) {
  BatchDeltas deltas;

  for (const auto& [rel, tuple] : edb_inserts) {
    DNA_CHECK_MSG(program_.relation(rel).is_input,
                  "EDB insert into non-input relation");
    DNA_CHECK_MSG(!db_.rel(rel).contains(tuple),
                  "EDB insert of an already-present tuple (not net)");
    db_.rel(rel).add_count(tuple, +1);
    deltas[rel].add_added(tuple);
  }
  for (const auto& [rel, tuple] : edb_removes) {
    DNA_CHECK_MSG(program_.relation(rel).is_input,
                  "EDB removal from non-input relation");
    DNA_CHECK_MSG(db_.rel(rel).contains(tuple),
                  "EDB removal of an absent tuple (not net)");
    DNA_CHECK_MSG(!deltas[rel].added_set.count(tuple),
                  "tuple both inserted and removed in one batch");
    db_.rel(rel).add_count(tuple, -db_.rel(rel).count(tuple));
    deltas[rel].add_removed(tuple);
  }

  for (size_t si = 0; si < strat_.strata.size(); ++si) {
    const Stratum& stratum = strat_.strata[si];
    if (!stratum_inputs_changed(stratum, deltas)) continue;
    if (stratum.recursive || force_dred) {
      dred_stratum(stratum, deltas);
    } else {
      counting_stratum(stratum, deltas);
    }
  }
  return deltas;
}

bool IncrementalMaintainer::stratum_inputs_changed(
    const Stratum& stratum, const BatchDeltas& deltas) const {
  for (int ri : stratum.rules) {
    const Rule& rule = program_.rules()[static_cast<size_t>(ri)];
    for (const Literal& lit : rule.body) {
      auto it = deltas.find(lit.atom.relation);
      if (it != deltas.end() && !it->second.empty()) return true;
    }
  }
  return false;
}

void IncrementalMaintainer::counting_stratum(const Stratum& stratum,
                                             BatchDeltas& deltas) {
  const size_t si = static_cast<size_t>(strat_.stratum_of[stratum.relations[0]]);
  CountMap head_delta;

  for (const RulePlan& plan : plans_[si]) {
    const size_t k = plan.steps();
    for (size_t i = 0; i < k; ++i) {
      const Literal& lit = plan.literal(i);
      auto dit = deltas.find(lit.atom.relation);
      if (dit == deltas.end() || dit->second.empty()) continue;

      // Telescoping: steps before i see the new state, steps after i the
      // old state; step i ranges over the relation's delta.
      std::vector<PositionSource> sources(k);
      for (size_t j = 0; j < i; ++j) {
        sources[j] = {PositionSource::Kind::kState, nullptr};
      }
      for (size_t j = i + 1; j < k; ++j) {
        sources[j] = {PositionSource::Kind::kOldState, nullptr};
      }

      // Positive literal: additions derive (+), removals retract (-).
      // Negated literal: additions retract (-), removals derive (+).
      const int add_sign = lit.negated ? -1 : +1;
      if (!dit->second.added.empty()) {
        sources[i] = {PositionSource::Kind::kAddedOf, nullptr};
        evaluate_plan(db_, deltas, plan, sources, [&](const Tuple& head) {
          head_delta[head] += add_sign;
        });
      }
      if (!dit->second.removed.empty()) {
        sources[i] = {PositionSource::Kind::kRemovedOf, nullptr};
        evaluate_plan(db_, deltas, plan, sources, [&](const Tuple& head) {
          head_delta[head] -= add_sign;
        });
      }
    }
  }

  const int head_rel = stratum.relations[0];
  for (const auto& [tuple, dcount] : head_delta) {
    const int transition = db_.rel(head_rel).add_count(tuple, dcount);
    if (transition > 0) {
      deltas[head_rel].add_added(tuple);
    } else if (transition < 0) {
      deltas[head_rel].add_removed(tuple);
    }
  }
}

void IncrementalMaintainer::dred_stratum(const Stratum& stratum,
                                         BatchDeltas& deltas) {
  const size_t si = static_cast<size_t>(strat_.stratum_of[stratum.relations[0]]);
  const std::vector<RulePlan>& plans = plans_[si];
  std::unordered_set<int> in_stratum(stratum.relations.begin(),
                                     stratum.relations.end());

  // Original presence of every tuple we touch, to compute net changes last.
  std::unordered_map<int, std::unordered_map<Tuple, bool, TupleHash>> touched;
  auto note_touch = [&](int rel, const Tuple& t, bool currently_present) {
    touched[rel].try_emplace(t, currently_present);
  };

  // ---- Phase A: over-delete ----------------------------------------------
  // Deletion candidates: head tuples with a derivation through a removed
  // tuple (positive position) or a newly added tuple (negated position).
  // Stratum relations keep their pre-phase contents during the whole phase,
  // so kState on them *is* the old state; lower strata use kOldState views.
  std::unordered_map<int, std::vector<Tuple>> del_frontier;
  std::unordered_map<int, TupleSet> del_set;

  auto queue_delete = [&](int rel, const Tuple& head) {
    if (!db_.rel(rel).contains(head)) return;   // never materialized
    if (del_set[rel].count(head)) return;       // already queued
    del_set[rel].insert(head);
    del_frontier[rel].push_back(head);
    note_touch(rel, head, true);
  };

  auto sources_for_overdelete = [&](const RulePlan& plan, size_t delta_step,
                                    PositionSource::Kind delta_kind) {
    std::vector<PositionSource> sources(plan.steps());
    for (size_t j = 0; j < plan.steps(); ++j) {
      const Literal& lj = plan.literal(j);
      if (j == delta_step) {
        sources[j] = {delta_kind, nullptr};
      } else if (in_stratum.count(lj.atom.relation)) {
        sources[j] = {PositionSource::Kind::kState, nullptr};  // == old
      } else {
        sources[j] = {PositionSource::Kind::kOldState, nullptr};
      }
    }
    return sources;
  };

  // Seed with external (lower-strata / EDB) changes.
  std::vector<std::pair<int, Tuple>> buffered;
  for (const RulePlan& plan : plans) {
    for (size_t i = 0; i < plan.steps(); ++i) {
      const Literal& lit = plan.literal(i);
      if (in_stratum.count(lit.atom.relation)) continue;
      auto dit = deltas.find(lit.atom.relation);
      if (dit == deltas.end() || dit->second.empty()) continue;
      // A removed positive tuple or an added negated tuple kills derivations.
      const auto kind = lit.negated ? PositionSource::Kind::kAddedOf
                                    : PositionSource::Kind::kRemovedOf;
      auto sources = sources_for_overdelete(plan, i, kind);
      evaluate_plan(db_, deltas, plan, sources, [&](const Tuple& head) {
        buffered.emplace_back(plan.rule->head.relation, head);
      });
    }
  }
  for (auto& [rel, head] : buffered) queue_delete(rel, head);
  buffered.clear();

  // Propagate over-deletions within the stratum.
  while (true) {
    std::unordered_map<int, std::vector<Tuple>> frontier =
        std::move(del_frontier);
    del_frontier.clear();
    bool any = false;
    for (auto& [rel, list] : frontier) {
      if (!list.empty()) any = true;
    }
    if (!any) break;
    for (const RulePlan& plan : plans) {
      for (size_t i = 0; i < plan.steps(); ++i) {
        const Literal& lit = plan.literal(i);
        if (lit.negated || !in_stratum.count(lit.atom.relation)) continue;
        auto fit = frontier.find(lit.atom.relation);
        if (fit == frontier.end() || fit->second.empty()) continue;
        auto sources =
            sources_for_overdelete(plan, i, PositionSource::Kind::kList);
        sources[i].list = &fit->second;
        evaluate_plan(db_, deltas, plan, sources, [&](const Tuple& head) {
          buffered.emplace_back(plan.rule->head.relation, head);
        });
      }
    }
    for (auto& [rel, head] : buffered) queue_delete(rel, head);
    buffered.clear();
  }

  // Physically delete.
  for (auto& [rel, tuples] : del_set) {
    for (const Tuple& t : tuples) {
      db_.rel(rel).add_count(t, -db_.rel(rel).count(t));
    }
  }

  // ---- Phase B + C: re-derive and insert ----------------------------------
  // Seeds: (1) over-deleted tuples that still have a derivation from the
  // remaining facts; (2) derivations enabled by external additions (positive)
  // or external removals (negated). Then a semi-naive insertion fixpoint.
  std::unordered_map<int, std::vector<Tuple>> ins_frontier;

  auto sources_new = [&](const RulePlan& plan) {
    return std::vector<PositionSource>(plan.steps());
  };

  // (1) Re-derivation of deleted tuples, head-restricted.
  for (auto& [rel, tuples] : del_set) {
    for (const Tuple& t : tuples) {
      bool rederived = false;
      for (const RulePlan& plan : plans) {
        if (plan.rule->head.relation != rel) continue;
        auto sources = sources_new(plan);
        evaluate_plan(
            db_, deltas, plan, sources,
            [&](const Tuple&) { rederived = true; }, &t);
        if (rederived) break;
      }
      if (rederived) {
        db_.rel(rel).add_count(t, +1);
        ins_frontier[rel].push_back(t);
      }
    }
  }

  // (2) External additions / removed-negations.
  for (const RulePlan& plan : plans) {
    for (size_t i = 0; i < plan.steps(); ++i) {
      const Literal& lit = plan.literal(i);
      if (in_stratum.count(lit.atom.relation)) continue;
      auto dit = deltas.find(lit.atom.relation);
      if (dit == deltas.end() || dit->second.empty()) continue;
      const auto kind = lit.negated ? PositionSource::Kind::kRemovedOf
                                    : PositionSource::Kind::kAddedOf;
      auto sources = sources_new(plan);
      sources[i] = {kind, nullptr};
      evaluate_plan(db_, deltas, plan, sources, [&](const Tuple& head) {
        buffered.emplace_back(plan.rule->head.relation, head);
      });
    }
  }
  for (auto& [rel, head] : buffered) {
    if (!db_.rel(rel).contains(head)) {
      note_touch(rel, head, false);
      db_.rel(rel).add_count(head, +1);
      ins_frontier[rel].push_back(head);
    }
  }
  buffered.clear();

  // Semi-naive insertion fixpoint within the stratum.
  while (true) {
    std::unordered_map<int, std::vector<Tuple>> frontier =
        std::move(ins_frontier);
    ins_frontier.clear();
    bool any = false;
    for (auto& [rel, list] : frontier) {
      if (!list.empty()) any = true;
    }
    if (!any) break;
    for (const RulePlan& plan : plans) {
      for (size_t i = 0; i < plan.steps(); ++i) {
        const Literal& lit = plan.literal(i);
        if (lit.negated || !in_stratum.count(lit.atom.relation)) continue;
        auto fit = frontier.find(lit.atom.relation);
        if (fit == frontier.end() || fit->second.empty()) continue;
        auto sources = sources_new(plan);
        sources[i] = {PositionSource::Kind::kList, &fit->second};
        evaluate_plan(db_, deltas, plan, sources, [&](const Tuple& head) {
          buffered.emplace_back(plan.rule->head.relation, head);
        });
      }
    }
    for (auto& [rel, head] : buffered) {
      if (!db_.rel(rel).contains(head)) {
        note_touch(rel, head, false);
        db_.rel(rel).add_count(head, +1);
        ins_frontier[rel].push_back(head);
      }
    }
    buffered.clear();
  }

  // ---- Net changes ---------------------------------------------------------
  for (auto& [rel, tuples] : touched) {
    for (auto& [tuple, was_present] : tuples) {
      const bool now_present = db_.rel(rel).contains(tuple);
      if (was_present && !now_present) {
        deltas[rel].add_removed(tuple);
      } else if (!was_present && now_present) {
        deltas[rel].add_added(tuple);
      }
    }
  }
}

}  // namespace dna::datalog
