#include "datalog/engine.h"

#include <algorithm>
#include <map>

#include "util/error.h"

namespace dna::datalog {

DatalogEngine::DatalogEngine(const std::string& program_text,
                             Strategy strategy)
    : strategy_(strategy), db_(Program{}) {
  ParsedProgram parsed = parse_program(program_text, interner_);
  program_ = std::move(parsed.program);
  init();
  for (auto& [rel, tuple] : parsed.facts) insert(rel, std::move(tuple));
  flush();
}

DatalogEngine::DatalogEngine(Program program, Strategy strategy)
    : program_(std::move(program)), strategy_(strategy), db_(Program{}) {
  program_.validate();
  init();
}

void DatalogEngine::init() {
  strat_ = stratify(program_);
  db_ = Database(program_);
  maintainer_ =
      std::make_unique<IncrementalMaintainer>(program_, strat_, db_);
  last_changes_.assign(program_.relations().size(), {});
}

int DatalogEngine::relation_id(const std::string& name) const {
  int id = program_.relation_id(name);
  if (id < 0) throw Error("unknown relation: " + name);
  return id;
}

void DatalogEngine::insert(int rel, Tuple tuple) {
  DNA_CHECK_MSG(program_.relation(rel).is_input,
                "insert into non-input relation " +
                    program_.relation(rel).name);
  DNA_CHECK_MSG(static_cast<int>(tuple.size()) == program_.relation(rel).arity,
                "tuple arity mismatch for " + program_.relation(rel).name);
  pending_.push_back({rel, std::move(tuple), true});
}

void DatalogEngine::insert(const std::string& rel, Tuple tuple) {
  insert(relation_id(rel), std::move(tuple));
}

void DatalogEngine::remove(int rel, Tuple tuple) {
  DNA_CHECK_MSG(program_.relation(rel).is_input,
                "remove from non-input relation " +
                    program_.relation(rel).name);
  pending_.push_back({rel, std::move(tuple), false});
}

void DatalogEngine::remove(const std::string& rel, Tuple tuple) {
  remove(relation_id(rel), std::move(tuple));
}

void DatalogEngine::net_pending(std::vector<std::pair<int, Tuple>>& inserts,
                                std::vector<std::pair<int, Tuple>>& removes) {
  // Replay the queued ops over the current presence to find net changes.
  std::map<std::pair<int, Tuple>, bool> final_state;
  for (const PendingOp& op : pending_) {
    final_state[{op.rel, op.tuple}] = op.is_insert;
  }
  for (auto& [key, present_after] : final_state) {
    const auto& [rel, tuple] = key;
    const bool present_before = db_.rel(rel).contains(tuple);
    if (present_after && !present_before) {
      inserts.emplace_back(rel, tuple);
    } else if (!present_after && present_before) {
      removes.emplace_back(rel, tuple);
    }
  }
  pending_.clear();
}

void DatalogEngine::flush() {
  for (auto& changes : last_changes_) {
    changes.added.clear();
    changes.removed.clear();
  }
  switch (strategy_) {
    case Strategy::kIncremental:
      flush_incremental(/*force_dred=*/false);
      break;
    case Strategy::kIncrementalForceDRed:
      flush_incremental(/*force_dred=*/true);
      break;
    case Strategy::kRecompute:
      flush_recompute();
      break;
  }
}

void DatalogEngine::flush_incremental(bool force_dred) {
  std::vector<std::pair<int, Tuple>> inserts, removes;
  net_pending(inserts, removes);
  if (inserts.empty() && removes.empty()) return;
  BatchDeltas deltas = maintainer_->apply(inserts, removes, force_dred);
  for (auto& [rel, delta] : deltas) {
    last_changes_[static_cast<size_t>(rel)].added = delta.added;
    last_changes_[static_cast<size_t>(rel)].removed = delta.removed;
  }
}

void DatalogEngine::flush_recompute() {
  std::vector<std::pair<int, Tuple>> inserts, removes;
  net_pending(inserts, removes);

  // Snapshot old IDB contents for change reporting.
  std::vector<TupleSet> before(program_.relations().size());
  for (size_t rel = 0; rel < program_.relations().size(); ++rel) {
    if (program_.relation(static_cast<int>(rel)).is_input) continue;
    for (const auto& [tuple, cnt] : db_.rel(static_cast<int>(rel)).facts()) {
      (void)cnt;
      before[rel].insert(tuple);
    }
  }

  for (auto& [rel, tuple] : inserts) {
    db_.rel(rel).add_count(tuple, +1);
    last_changes_[static_cast<size_t>(rel)].added.push_back(tuple);
  }
  for (auto& [rel, tuple] : removes) {
    db_.rel(rel).add_count(tuple, -db_.rel(rel).count(tuple));
    last_changes_[static_cast<size_t>(rel)].removed.push_back(tuple);
  }

  evaluate_program(db_, program_, strat_);

  for (size_t rel = 0; rel < program_.relations().size(); ++rel) {
    if (program_.relation(static_cast<int>(rel)).is_input) continue;
    Changes& changes = last_changes_[rel];
    for (const auto& [tuple, cnt] : db_.rel(static_cast<int>(rel)).facts()) {
      (void)cnt;
      if (!before[rel].count(tuple)) changes.added.push_back(tuple);
    }
    for (const Tuple& tuple : before[rel]) {
      if (!db_.rel(static_cast<int>(rel)).contains(tuple)) {
        changes.removed.push_back(tuple);
      }
    }
  }
}

bool DatalogEngine::contains(int rel, const Tuple& tuple) const {
  return db_.rel(rel).contains(tuple);
}

bool DatalogEngine::contains(const std::string& rel,
                             const Tuple& tuple) const {
  return contains(relation_id(rel), tuple);
}

size_t DatalogEngine::size(const std::string& rel) const {
  return size(relation_id(rel));
}

std::vector<Tuple> DatalogEngine::rows(int rel) const {
  std::vector<Tuple> out;
  out.reserve(db_.rel(rel).size());
  for (const auto& [tuple, cnt] : db_.rel(rel).facts()) {
    (void)cnt;
    out.push_back(tuple);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Tuple> DatalogEngine::rows(const std::string& rel) const {
  return rows(relation_id(rel));
}

const DatalogEngine::Changes& DatalogEngine::changes(int rel) const {
  return last_changes_.at(static_cast<size_t>(rel));
}

const DatalogEngine::Changes& DatalogEngine::changes(
    const std::string& rel) const {
  return changes(relation_id(rel));
}

}  // namespace dna::datalog
