// Incremental view maintenance for datalog programs.
//
// Given a batch of EDB insertions/deletions, propagates set-level changes
// stratum by stratum:
//
//  * Non-recursive strata use the COUNTING algorithm: each IDB tuple stores
//    its exact number of derivations, and a telescoping delta-join
//      Δ(L1 ⋈ … ⋈ Lk) = Σ_i  L1ⁿᵉʷ … L(i-1)ⁿᵉʷ ⋈ ΔLi ⋈ L(i+1)ᵒˡᵈ … Lkᵒˡᵈ
//    updates the counts; a tuple appears/disappears when its count crosses
//    zero.
//
//  * Recursive strata use DRed (delete–rederive): over-delete everything
//    whose derivation may depend on a deleted tuple, re-derive survivors
//    from the remaining facts, then semi-naively insert new derivations.
//    Counting is unsound under recursion (a tuple may "support itself"),
//    which is exactly why both algorithms exist — and why the engine exposes
//    a force-DRed mode so the two can be compared on non-recursive programs
//    (experiment F6).
#pragma once

#include "datalog/eval.h"

namespace dna::datalog {

class IncrementalMaintainer {
 public:
  /// `db` must already hold a consistent materialization of `program`
  /// (counting counts in non-recursive strata, presence in recursive ones).
  IncrementalMaintainer(const Program& program, const Stratification& strat,
                        Database& db);

  /// Applies net EDB set-changes and propagates them through all strata.
  /// Inputs must be *net*: no tuple may appear in both lists, inserts must
  /// be absent from the EDB, removals present. Returns the set-level change
  /// of every relation (EDB and IDB) keyed by relation id.
  ///
  /// When `force_dred` is true every stratum is maintained with DRed; the
  /// database must then have been materialized with set semantics
  /// (see DatalogEngine Strategy::kIncrementalForceDRed).
  BatchDeltas apply(const std::vector<std::pair<int, Tuple>>& edb_inserts,
                    const std::vector<std::pair<int, Tuple>>& edb_removes,
                    bool force_dred = false);

 private:
  void counting_stratum(const Stratum& stratum, BatchDeltas& deltas);
  void dred_stratum(const Stratum& stratum, BatchDeltas& deltas);

  /// True if any relation read by this stratum's rules changed in `deltas`.
  bool stratum_inputs_changed(const Stratum& stratum,
                              const BatchDeltas& deltas) const;

  const Program& program_;
  const Stratification& strat_;
  Database& db_;
  std::vector<std::vector<RulePlan>> plans_;  // by stratum index
};

}  // namespace dna::datalog
