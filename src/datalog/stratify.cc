#include "datalog/stratify.h"

#include <algorithm>

#include "util/error.h"

namespace dna::datalog {

namespace {

/// Iterative Tarjan SCC over the relation dependency graph.
class SccFinder {
 public:
  SccFinder(int n, const std::vector<std::vector<int>>& adj)
      : adj_(adj),
        index_(static_cast<size_t>(n), -1),
        lowlink_(static_cast<size_t>(n), -1),
        on_stack_(static_cast<size_t>(n), false),
        component_(static_cast<size_t>(n), -1) {}

  /// Returns components in reverse topological order (Tarjan property):
  /// component_of[v] for every v, components listed callee-first.
  std::pair<std::vector<int>, int> run() {
    for (int v = 0; v < static_cast<int>(index_.size()); ++v) {
      if (index_[v] == -1) strong_connect(v);
    }
    return {component_, num_components_};
  }

 private:
  void strong_connect(int root) {
    struct Frame {
      int node;
      size_t edge = 0;
    };
    std::vector<Frame> call_stack{{root}};
    push_node(root);
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const int v = frame.node;
      if (frame.edge < adj_[v].size()) {
        const int w = adj_[v][frame.edge++];
        if (index_[w] == -1) {
          push_node(w);
          call_stack.push_back({w});
        } else if (on_stack_[w]) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
      } else {
        if (lowlink_[v] == index_[v]) {
          // v roots an SCC; pop it.
          for (;;) {
            int w = stack_.back();
            stack_.pop_back();
            on_stack_[w] = false;
            component_[w] = num_components_;
            if (w == v) break;
          }
          ++num_components_;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          int parent = call_stack.back().node;
          lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
        }
      }
    }
  }

  void push_node(int v) {
    index_[v] = lowlink_[v] = next_index_++;
    stack_.push_back(v);
    on_stack_[v] = true;
  }

  const std::vector<std::vector<int>>& adj_;
  std::vector<int> index_, lowlink_;
  std::vector<bool> on_stack_;
  std::vector<int> component_;
  std::vector<int> stack_;
  int next_index_ = 0;
  int num_components_ = 0;
};

}  // namespace

Stratification stratify(const Program& program) {
  const int n = static_cast<int>(program.relations().size());
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));  // body -> head
  // (body relation, head relation) pairs connected by negation.
  std::vector<std::pair<int, int>> negative_edges;
  std::vector<bool> self_recursive(static_cast<size_t>(n), false);

  for (const Rule& rule : program.rules()) {
    const int head = rule.head.relation;
    for (const Literal& lit : rule.body) {
      adj[lit.atom.relation].push_back(head);
      if (lit.negated) negative_edges.emplace_back(lit.atom.relation, head);
      if (lit.atom.relation == head && !lit.negated) {
        self_recursive[head] = true;
      }
    }
  }

  auto [component, num_components] = SccFinder(n, adj).run();

  for (auto [body, head] : negative_edges) {
    if (component[body] == component[head]) {
      throw Error("program is not stratifiable: negation of " +
                  program.relation(body).name + " inside a recursive cycle");
    }
  }

  std::vector<std::vector<int>> members(static_cast<size_t>(num_components));
  for (int v = 0; v < n; ++v) {
    members[component[v]].push_back(v);
  }

  Stratification out;
  out.stratum_of.assign(static_cast<size_t>(n), -1);
  // Along body -> head edges, Tarjan finishes dependent SCCs first, so the
  // dependency-first (evaluation) order is the reverse component order.
  for (int c = num_components - 1; c >= 0; --c) {
    // Skip strata that contain only input relations with no rules.
    bool any_idb = false;
    for (int rel : members[c]) {
      if (!program.relation(rel).is_input) any_idb = true;
    }
    if (!any_idb) continue;
    Stratum stratum;
    stratum.relations = members[c];
    for (int rel : members[c]) {
      if (program.relation(rel).is_input) {
        throw Error("input relation " + program.relation(rel).name +
                    " participates in a derivation cycle");
      }
      if (members[c].size() > 1 || self_recursive[rel]) {
        stratum.recursive = true;
      }
    }
    for (size_t ri = 0; ri < program.rules().size(); ++ri) {
      if (component[program.rules()[ri].head.relation] == c) {
        stratum.rules.push_back(static_cast<int>(ri));
      }
    }
    for (int rel : members[c]) {
      out.stratum_of[rel] = static_cast<int>(out.strata.size());
    }
    out.strata.push_back(std::move(stratum));
  }
  return out;
}

}  // namespace dna::datalog
