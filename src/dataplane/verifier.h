// Data-plane verifier: full verification plus EC-granular incremental
// re-verification.
//
// Full mode inserts every FIB destination and ACL destination prefix into
// the EC index and computes every atom's forwarding graph and reachability.
// Incremental mode receives a FibDelta and the config change list, marks as
// "affected" only the atoms overlapping changed prefixes (plus atoms covered
// by edited ACLs), re-verifies exactly those, and reports the reachability
// delta in a canonical, EC-independent form that monolithic mode can also
// produce — the property tests require the two to be identical.
#pragma once

#include <map>
#include <string>

#include "config/diff.h"
#include "dataplane/ectrie.h"
#include "dataplane/reach.h"
#include "util/timer.h"

namespace dna::dp {

/// "src can deliver to dst for destinations in [lo, hi]".
struct ReachFact {
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  uint32_t lo = 0;
  uint32_t hi = 0;

  auto operator<=>(const ReachFact&) const = default;
};

/// "src hits a loop / blackhole for destinations in [lo, hi]".
struct FlagFact {
  topo::NodeId src = 0;
  uint32_t lo = 0;
  uint32_t hi = 0;

  auto operator<=>(const FlagFact&) const = default;
};

struct ReachDelta {
  std::vector<ReachFact> gained, lost;
  std::vector<FlagFact> loops_gained, loops_lost;
  std::vector<FlagFact> blackholes_gained, blackholes_lost;

  bool empty() const;
  size_t total_changes() const;
  /// Sorts each list and coalesces adjacent address ranges, yielding a form
  /// independent of how the address space was partitioned into atoms.
  void canonicalize();

  bool operator==(const ReachDelta&) const = default;
};

/// Coalesces adjacent/overlapping ranges of equal (src, dst) / (src).
void canonicalize_facts(std::vector<ReachFact>& facts);
void canonicalize_facts(std::vector<FlagFact>& facts);

class Verifier {
 public:
  /// Full verification. Both pointees must outlive the verifier and remain
  /// at stable addresses (the core engine owns them).
  Verifier(const topo::Snapshot* snapshot, const std::vector<cp::Fib>* fibs);

  /// Incremental re-verification after the control plane advanced.
  /// `snapshot`/`fibs` are the post-change pointers (may be the same
  /// objects, mutated). Returns the canonical reachability delta.
  ReachDelta apply(const topo::Snapshot* snapshot,
                   const std::vector<cp::Fib>* fibs,
                   const cp::FibDelta& fib_delta,
                   const std::vector<config::ConfigChange>& config_changes);

  /// Canonical full state: every delivery fact / loop / blackhole.
  std::vector<ReachFact> all_reach_facts() const;
  std::vector<FlagFact> all_loop_facts() const;
  std::vector<FlagFact> all_blackhole_facts() const;

  const EcIndex& ec_index() const { return index_; }
  size_t num_ecs() const { return index_.num_atoms(); }
  const EcGraph& graph(EcId ec) const { return graphs_.at(ec); }
  const EcReach& reach(EcId ec) const { return reaches_.at(ec); }

  /// ECs re-verified by the last apply() (experiment F4's numerator).
  size_t last_affected_ecs() const { return last_affected_; }

  /// Stage timings of the last apply(): "ec-index", "verify".
  const StageTimers& timers() const { return timers_; }

 private:
  void insert_all_prefixes();
  void refresh_acl_cache(topo::NodeId node);
  void verify_ec(EcId ec);

  /// Destination prefixes whose packets can behave differently after an
  /// ACL changed from `before` to `after` (first-match semantics): the
  /// destinations of rules in the multiset symmetric difference — a packet
  /// matching none of the differing rules sees an identical rule sequence.
  /// Falls back to every destination on a pure reorder.
  static std::vector<Ipv4Prefix> acl_dirty_dsts(
      const std::vector<config::AclRule>& before,
      const std::vector<config::AclRule>& after);

  const topo::Snapshot* snap_;
  const std::vector<cp::Fib>* fibs_;
  std::vector<LpmTable> lpm_;
  EcIndex index_;
  std::map<EcId, EcGraph> graphs_;
  std::map<EcId, EcReach> reaches_;
  /// Full rule lists per (node, acl) as of the last build/apply, so an ACL
  /// edit can invalidate exactly the atoms the *changed rules* cover.
  std::map<std::pair<topo::NodeId, std::string>,
           std::vector<config::AclRule>>
      acl_rules_cache_;
  /// (acl_in, acl_out) per (node, interface) as of the last build/apply.
  std::map<std::pair<topo::NodeId, std::string>,
           std::pair<std::string, std::string>>
      binding_cache_;

  /// The rule list an interface binding named `acl_name` effectively
  /// enforced before this batch (cache lookup; absent = permit-all).
  const std::vector<config::AclRule>& cached_rules(
      topo::NodeId node, const std::string& acl_name) const;
  size_t last_affected_ = 0;
  StageTimers timers_;
};

}  // namespace dna::dp
