#include "dataplane/properties.h"

#include "dataplane/acl_eval.h"

namespace dna::dp {

bool any_reach(const Verifier& verifier, topo::NodeId src, topo::NodeId dst,
               const Ipv4Prefix& traffic) {
  for (EcId ec : verifier.ec_index().covering(traffic)) {
    if (verifier.reach(ec).delivered[src].test(dst)) return true;
  }
  return false;
}

bool all_reach(const Verifier& verifier, topo::NodeId src, topo::NodeId dst,
               const Ipv4Prefix& traffic) {
  for (EcId ec : verifier.ec_index().covering(traffic)) {
    if (!verifier.reach(ec).delivered[src].test(dst)) return false;
  }
  return true;
}

bool loop_free(const Verifier& verifier, const Ipv4Prefix& traffic) {
  for (EcId ec : verifier.ec_index().covering(traffic)) {
    if (verifier.reach(ec).loop.any()) return false;
  }
  return true;
}

bool loop_free_from(const Verifier& verifier, const std::vector<bool>& sources,
                    const Ipv4Prefix& traffic) {
  for (EcId ec : verifier.ec_index().covering(traffic)) {
    const auto& loop = verifier.reach(ec).loop;
    for (size_t node = 0; node < sources.size(); ++node) {
      if (sources[node] && loop.test(static_cast<topo::NodeId>(node))) {
        return false;
      }
    }
  }
  return true;
}

bool blackhole_free(const Verifier& verifier, topo::NodeId src,
                    const Ipv4Prefix& traffic) {
  for (EcId ec : verifier.ec_index().covering(traffic)) {
    if (verifier.reach(ec).blackhole.test(src)) return false;
  }
  return true;
}

bool isolated(const Verifier& verifier, topo::NodeId src, topo::NodeId dst,
              const Ipv4Prefix& traffic) {
  return !any_reach(verifier, src, dst, traffic);
}

namespace {

/// Does `src` deliver at `dst` in this EC graph while never visiting
/// `banned`? (DFS mirroring reach.cc's edge filtering.)
bool delivers_avoiding(const topo::Snapshot& snapshot, const EcGraph& graph,
                       Ipv4Addr rep, topo::NodeId src, topo::NodeId dst,
                       topo::NodeId banned) {
  const size_t n = snapshot.topology.num_nodes();
  if (src == banned) return false;
  std::vector<bool> visited(n, false);
  std::vector<topo::NodeId> stack{src};
  visited[src] = true;
  const Probe probe{probe_source_address(snapshot.configs[src]), rep};
  while (!stack.empty()) {
    topo::NodeId node = stack.back();
    stack.pop_back();
    const NodeVerdict& verdict = graph.verdicts[node];
    if (verdict.kind == NodeVerdict::Kind::kLocal && node == dst) return true;
    if (verdict.kind != NodeVerdict::Kind::kForward) continue;
    for (const cp::Hop& hop : verdict.hops) {
      if (hop.next == banned || visited[hop.next]) continue;
      const topo::Link& link = snapshot.topology.link(hop.link);
      if (!link.up) continue;
      const auto& cfg_u = snapshot.configs[node];
      const auto& cfg_v = snapshot.configs[hop.next];
      const auto* out_if = cfg_u.find_interface(link.if_of(node));
      const auto* in_if = cfg_v.find_interface(link.if_of(hop.next));
      if (!out_if || !in_if || !out_if->enabled || !in_if->enabled) continue;
      if (!acl_permits(cfg_u, out_if->acl_out, probe)) continue;
      if (!acl_permits(cfg_v, in_if->acl_in, probe)) continue;
      visited[hop.next] = true;
      stack.push_back(hop.next);
    }
  }
  return false;
}

}  // namespace

bool waypoint_enforced(const Verifier& verifier,
                       const topo::Snapshot& snapshot, topo::NodeId src,
                       topo::NodeId dst, topo::NodeId waypoint,
                       const Ipv4Prefix& traffic) {
  for (EcId ec : verifier.ec_index().covering(traffic)) {
    if (!verifier.reach(ec).delivered[src].test(dst)) continue;
    const Ipv4Addr rep = verifier.ec_index().representative(ec);
    if (delivers_avoiding(snapshot, verifier.graph(ec), rep, src, dst,
                          waypoint)) {
      return false;  // a path bypasses the waypoint
    }
  }
  return true;
}

}  // namespace dna::dp
