#include "dataplane/ectrie.h"

#include "util/error.h"

namespace dna::dp {

EcIndex::EcIndex() {
  // One atom covering the whole space.
  starts_.emplace(0u, 0u);
  ranges_.push_back({0u, ~0u});
}

std::pair<EcId, EcId> EcIndex::add_boundary(uint32_t addr) {
  auto it = starts_.lower_bound(addr);
  if (it != starts_.end() && it->first == addr) return {kNoSplit, kNoSplit};
  DNA_CHECK(it != starts_.begin());
  --it;  // atom containing addr
  const EcId parent = it->second;
  const EcId child = static_cast<EcId>(ranges_.size());
  ranges_.push_back({addr, ranges_[parent].hi});
  ranges_[parent].hi = addr - 1;
  starts_.emplace(addr, child);
  return {child, parent};
}

std::vector<std::pair<EcId, EcId>> EcIndex::insert_prefix(
    const Ipv4Prefix& prefix) {
  std::vector<std::pair<EcId, EcId>> created;
  auto a = add_boundary(prefix.first().bits());
  if (a.first != kNoSplit) created.push_back(a);
  const uint32_t last = prefix.last().bits();
  if (last != ~0u) {
    auto b = add_boundary(last + 1);
    if (b.first != kNoSplit) created.push_back(b);
  }
  return created;
}

std::vector<EcId> EcIndex::covering(const Ipv4Prefix& prefix) const {
  std::vector<EcId> out;
  const uint32_t lo = prefix.first().bits();
  const uint32_t hi = prefix.last().bits();
  auto it = starts_.upper_bound(lo);
  DNA_CHECK(it != starts_.begin());
  --it;  // first atom overlapping lo
  for (; it != starts_.end() && it->first <= hi; ++it) {
    out.push_back(it->second);
  }
  return out;
}

}  // namespace dna::dp
