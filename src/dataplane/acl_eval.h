// ACL evaluation for representative probe packets.
//
// Probes carry a concrete (src, dst) address pair and wildcard L4 fields;
// rules constrained on protocol or ports therefore never match a probe
// (DESIGN.md documents this representative-packet model — exact for the
// src/dst-prefix ACLs the workload generators produce).
#pragma once

#include "config/model.h"
#include "util/ip.h"

namespace dna::dp {

struct Probe {
  Ipv4Addr src;
  Ipv4Addr dst;
};

/// First-match evaluation with implicit deny. An empty name or a dangling
/// reference permits everything (no filter attached).
bool acl_permits(const config::NodeConfig& cfg, const std::string& acl_name,
                 const Probe& probe);

/// The address a node sources probes from: its loopback if present, else
/// its first enabled interface, else 0.0.0.0.
Ipv4Addr probe_source_address(const config::NodeConfig& cfg);

}  // namespace dna::dp
