// Property queries over a verified data plane.
//
// Queries are evaluated per equivalence class; a traffic selector prefix
// maps to the atoms overlapping it. The invariant layer (core/invariants.h)
// composes these into differential verdicts.
#pragma once

#include "dataplane/verifier.h"

namespace dna::dp {

/// True if traffic from `src` to some address in `traffic` is delivered
/// at `dst` (exists an overlapping atom with delivery).
bool any_reach(const Verifier& verifier, topo::NodeId src, topo::NodeId dst,
               const Ipv4Prefix& traffic);

/// True if every overlapping atom delivers from `src` at `dst`.
bool all_reach(const Verifier& verifier, topo::NodeId src, topo::NodeId dst,
               const Ipv4Prefix& traffic);

/// True if no ingress in the network can hit a forwarding loop for any
/// destination in `traffic`.
bool loop_free(const Verifier& verifier, const Ipv4Prefix& traffic);

/// Partition-scoped loop freedom: true if no ingress whose flag is set in
/// `sources` (indexed by NodeId) hits a forwarding loop within `traffic`.
/// ANDing this over a partition of the node set equals loop_free() — the
/// decomposition the shard tier's scatter/gather rides on.
bool loop_free_from(const Verifier& verifier, const std::vector<bool>& sources,
                    const Ipv4Prefix& traffic);

/// True if `src` never reaches a blackhole for destinations in `traffic`.
bool blackhole_free(const Verifier& verifier, topo::NodeId src,
                    const Ipv4Prefix& traffic);

/// True if no atom of `traffic` delivers from `src` at `dst` (isolation).
bool isolated(const Verifier& verifier, topo::NodeId src, topo::NodeId dst,
              const Ipv4Prefix& traffic);

/// True if every delivery from `src` to `dst` for `traffic` passes through
/// `waypoint` (checked by deleting the waypoint and requiring dst to become
/// unreachable in every overlapping atom where it was reachable).
bool waypoint_enforced(const Verifier& verifier, const topo::Snapshot& snapshot,
                       topo::NodeId src, topo::NodeId dst,
                       topo::NodeId waypoint, const Ipv4Prefix& traffic);

}  // namespace dna::dp
