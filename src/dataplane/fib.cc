#include "dataplane/fib.h"

namespace dna::dp {

void LpmTable::rebuild(const cp::Fib& fib) {
  entries_.clear();
  present_lengths_ = 0;
  for (const cp::FibEntry& entry : fib) {
    entries_[entry.prefix] = entry;
    present_lengths_ |= uint64_t{1} << entry.prefix.length();
  }
}

const cp::FibEntry* LpmTable::lookup(Ipv4Addr addr) const {
  for (int len = 32; len >= 0; --len) {
    if (!((present_lengths_ >> len) & 1)) continue;
    auto it = entries_.find(Ipv4Prefix(addr, static_cast<uint8_t>(len)));
    if (it != entries_.end()) return &it->second;
  }
  return nullptr;
}

}  // namespace dna::dp
