#include "dataplane/reach.h"

#include "dataplane/acl_eval.h"

namespace dna::dp {

namespace {

/// DFS colors for cycle detection.
enum class Color : uint8_t { kWhite, kGray, kBlack };

struct Walker {
  const topo::Snapshot& snapshot;
  const EcGraph& graph;
  Ipv4Addr rep;
  Probe probe;
  std::vector<Color> color;
  DynamicBitset* delivered = nullptr;
  bool loop = false;
  bool blackhole = false;

  /// Whether the hop u -> hop.next over hop.link passes the egress ACL at u
  /// and the ingress ACL at the peer.
  bool edge_permitted(topo::NodeId u, const cp::Hop& hop) const {
    const topo::Link& link = snapshot.topology.link(hop.link);
    if (!link.up) return false;
    const auto& cfg_u = snapshot.configs[u];
    const auto& cfg_v = snapshot.configs[hop.next];
    const auto* out_if = cfg_u.find_interface(link.if_of(u));
    const auto* in_if = cfg_v.find_interface(link.if_of(hop.next));
    if (!out_if || !in_if || !out_if->enabled || !in_if->enabled) return false;
    if (!acl_permits(cfg_u, out_if->acl_out, probe)) return false;
    if (!acl_permits(cfg_v, in_if->acl_in, probe)) return false;
    return true;
  }

  void visit(topo::NodeId node) {
    color[node] = Color::kGray;
    const NodeVerdict& verdict = graph.verdicts[node];
    switch (verdict.kind) {
      case NodeVerdict::Kind::kDrop:
        blackhole = true;
        break;
      case NodeVerdict::Kind::kLocal:
        delivered->set(node);
        break;
      case NodeVerdict::Kind::kForward: {
        bool any_out = false;
        for (const cp::Hop& hop : verdict.hops) {
          if (!edge_permitted(node, hop)) continue;
          any_out = true;
          if (color[hop.next] == Color::kGray) {
            loop = true;
          } else if (color[hop.next] == Color::kWhite) {
            visit(hop.next);
          }
        }
        // A forwarding entry whose every hop is filtered or down drops.
        if (!any_out) blackhole = true;
        break;
      }
    }
    color[node] = Color::kBlack;
  }
};

}  // namespace

EcReach compute_reach(const topo::Snapshot& snapshot, const EcGraph& graph,
                      Ipv4Addr rep) {
  const size_t n = snapshot.topology.num_nodes();
  EcReach reach;
  reach.delivered.assign(n, DynamicBitset(n));
  reach.loop = DynamicBitset(n);
  reach.blackhole = DynamicBitset(n);

  for (topo::NodeId src = 0; src < n; ++src) {
    Walker walker{snapshot,
                  graph,
                  rep,
                  {probe_source_address(snapshot.configs[src]), rep},
                  std::vector<Color>(n, Color::kWhite),
                  &reach.delivered[src],
                  false,
                  false};
    walker.visit(src);
    if (walker.loop) reach.loop.set(src);
    if (walker.blackhole) reach.blackhole.set(src);
  }
  return reach;
}

}  // namespace dna::dp
