// Packet equivalence classes over the destination address space.
//
// Every prefix ever observed (FIB destinations, ACL destination matches)
// contributes its boundary addresses; the atoms are the elementary intervals
// between consecutive boundaries. Within one atom every node's LPM decision
// and every ACL's destination match are constant, so verification runs once
// per atom with a representative address (Veriflow-style).
//
// Atoms only split (boundaries are never removed when a prefix disappears);
// a finer-than-necessary partition stays correct and keeps EC ids stable,
// which the incremental verifier relies on.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/ip.h"

namespace dna::dp {

using EcId = uint32_t;

class EcIndex {
 public:
  EcIndex();

  /// Ensures boundaries exist for `prefix`. Returns (child, parent) pairs
  /// for atoms created by splits: the child covers a suffix piece of the
  /// range the parent covered before the split, so the child's pre-change
  /// verification state is exactly the parent's.
  std::vector<std::pair<EcId, EcId>> insert_prefix(const Ipv4Prefix& prefix);

  /// Atom ids whose range overlaps `prefix`.
  std::vector<EcId> covering(const Ipv4Prefix& prefix) const;

  /// Representative (first) address of an atom.
  Ipv4Addr representative(EcId ec) const { return Ipv4Addr(ranges_[ec].lo); }

  struct Range {
    uint32_t lo = 0;
    uint32_t hi = 0;  // inclusive
  };
  const Range& range(EcId ec) const { return ranges_[ec]; }

  size_t num_atoms() const { return ranges_.size(); }

 private:
  /// Inserts a boundary at `addr`; returns (child, parent) for a fresh
  /// split, or (kNoSplit, kNoSplit) if the boundary already existed.
  static constexpr EcId kNoSplit = ~EcId{0};
  std::pair<EcId, EcId> add_boundary(uint32_t addr);

  std::map<uint32_t, EcId> starts_;  // atom start address -> id
  std::vector<Range> ranges_;        // by id
};

}  // namespace dna::dp
