#include "dataplane/verifier.h"

#include <algorithm>
#include <set>

#include "util/error.h"

namespace dna::dp {

bool ReachDelta::empty() const {
  return gained.empty() && lost.empty() && loops_gained.empty() &&
         loops_lost.empty() && blackholes_gained.empty() &&
         blackholes_lost.empty();
}

size_t ReachDelta::total_changes() const {
  return gained.size() + lost.size() + loops_gained.size() +
         loops_lost.size() + blackholes_gained.size() +
         blackholes_lost.size();
}

void canonicalize_facts(std::vector<ReachFact>& facts) {
  std::sort(facts.begin(), facts.end());
  std::vector<ReachFact> merged;
  for (const ReachFact& fact : facts) {
    if (!merged.empty() && merged.back().src == fact.src &&
        merged.back().dst == fact.dst &&
        static_cast<uint64_t>(merged.back().hi) + 1 >= fact.lo) {
      merged.back().hi = std::max(merged.back().hi, fact.hi);
    } else {
      merged.push_back(fact);
    }
  }
  facts = std::move(merged);
}

void canonicalize_facts(std::vector<FlagFact>& facts) {
  std::sort(facts.begin(), facts.end());
  std::vector<FlagFact> merged;
  for (const FlagFact& fact : facts) {
    if (!merged.empty() && merged.back().src == fact.src &&
        static_cast<uint64_t>(merged.back().hi) + 1 >= fact.lo) {
      merged.back().hi = std::max(merged.back().hi, fact.hi);
    } else {
      merged.push_back(fact);
    }
  }
  facts = std::move(merged);
}

void ReachDelta::canonicalize() {
  canonicalize_facts(gained);
  canonicalize_facts(lost);
  canonicalize_facts(loops_gained);
  canonicalize_facts(loops_lost);
  canonicalize_facts(blackholes_gained);
  canonicalize_facts(blackholes_lost);
}

Verifier::Verifier(const topo::Snapshot* snapshot,
                   const std::vector<cp::Fib>* fibs)
    : snap_(snapshot), fibs_(fibs) {
  const size_t n = snap_->topology.num_nodes();
  lpm_.resize(n);
  for (size_t node = 0; node < n; ++node) lpm_[node].rebuild((*fibs_)[node]);
  for (topo::NodeId node = 0; node < n; ++node) refresh_acl_cache(node);
  insert_all_prefixes();
  for (EcId ec = 0; ec < index_.num_atoms(); ++ec) verify_ec(ec);
}

void Verifier::insert_all_prefixes() {
  // Return values ignored: the constructor verifies every atom afterwards.
  for (const cp::Fib& fib : *fibs_) {
    for (const cp::FibEntry& entry : fib) {
      (void)index_.insert_prefix(entry.prefix);
    }
  }
  for (const auto& [key, rules] : acl_rules_cache_) {
    (void)key;
    for (const auto& rule : rules) {
      (void)index_.insert_prefix(rule.dst);
    }
  }
}

void Verifier::refresh_acl_cache(topo::NodeId node) {
  // Drop stale entries for this node, then re-cache its current ACLs and
  // interface bindings.
  for (auto it = acl_rules_cache_.lower_bound({node, ""});
       it != acl_rules_cache_.end() && it->first.first == node;) {
    it = acl_rules_cache_.erase(it);
  }
  for (auto it = binding_cache_.lower_bound({node, ""});
       it != binding_cache_.end() && it->first.first == node;) {
    it = binding_cache_.erase(it);
  }
  for (const auto& acl : snap_->configs[node].acls) {
    acl_rules_cache_[{node, acl.name}] = acl.rules;
  }
  for (const auto& iface : snap_->configs[node].interfaces) {
    if (!iface.acl_in.empty() || !iface.acl_out.empty()) {
      binding_cache_[{node, iface.name}] = {iface.acl_in, iface.acl_out};
    }
  }
}

namespace {
/// A missing/unbound ACL behaves as permit-all (acl_eval.cc).
const std::vector<config::AclRule>& permit_all_rules() {
  static const std::vector<config::AclRule> kPermitAll = {
      {config::FilterAction::kPermit, Ipv4Prefix(), Ipv4Prefix(), -1, -1,
       -1}};
  return kPermitAll;
}
}  // namespace

const std::vector<config::AclRule>& Verifier::cached_rules(
    topo::NodeId node, const std::string& acl_name) const {
  if (acl_name.empty()) return permit_all_rules();
  auto it = acl_rules_cache_.find({node, acl_name});
  return it != acl_rules_cache_.end() ? it->second : permit_all_rules();
}

std::vector<Ipv4Prefix> Verifier::acl_dirty_dsts(
    const std::vector<config::AclRule>& before,
    const std::vector<config::AclRule>& after) {
  if (before == after) return {};
  // Multiset symmetric difference of the two rule lists.
  std::vector<config::AclRule> b = before, a = after;
  std::vector<config::AclRule> differing;
  for (const auto& rule : b) {
    auto it = std::find(a.begin(), a.end(), rule);
    if (it != a.end()) {
      a.erase(it);
    } else {
      differing.push_back(rule);
    }
  }
  differing.insert(differing.end(), a.begin(), a.end());

  std::vector<Ipv4Prefix> dsts;
  if (differing.empty()) {
    // Same rules, different order: any matched packet may flip.
    for (const auto& rule : before) dsts.push_back(rule.dst);
  } else {
    for (const auto& rule : differing) dsts.push_back(rule.dst);
  }
  std::sort(dsts.begin(), dsts.end());
  dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());
  return dsts;
}

void Verifier::verify_ec(EcId ec) {
  const Ipv4Addr rep = index_.representative(ec);
  graphs_[ec] = build_ec_graph(*snap_, lpm_, rep);
  reaches_[ec] = compute_reach(*snap_, graphs_[ec], rep);
}

ReachDelta Verifier::apply(
    const topo::Snapshot* snapshot, const std::vector<cp::Fib>* fibs,
    const cp::FibDelta& fib_delta,
    const std::vector<config::ConfigChange>& config_changes) {
  snap_ = snapshot;
  fibs_ = fibs;
  timers_.clear();
  Stopwatch sw;

  // ---- Collect the prefixes whose atoms need re-verification -------------
  std::vector<Ipv4Prefix> dirty_prefixes;
  bool all_dirty = false;
  for (const auto& [node, delta] : fib_delta.by_node) {
    (void)node;
    for (const auto& entry : delta.added) dirty_prefixes.push_back(entry.prefix);
    for (const auto& entry : delta.removed) {
      dirty_prefixes.push_back(entry.prefix);
    }
  }
  // Pass 1 reads the caches (pre-change state); caches refresh afterwards
  // so multiple changes on one node in a batch all see the old state.
  std::set<topo::NodeId> nodes_to_refresh;
  for (const auto& change : config_changes) {
    if (!snap_->topology.has_node(change.node)) continue;
    const topo::NodeId node = snap_->topology.node_id(change.node);
    switch (change.kind) {
      case config::ChangeKind::kAclChanged: {
        const config::AclConfig* now =
            snap_->configs[node].find_acl(change.detail);
        const std::vector<config::AclRule>& after =
            now ? now->rules : permit_all_rules();
        for (const Ipv4Prefix& dst :
             acl_dirty_dsts(cached_rules(node, change.detail), after)) {
          dirty_prefixes.push_back(dst);
        }
        nodes_to_refresh.insert(node);
        break;
      }
      case config::ChangeKind::kInterfaceAclBinding: {
        // Re-binding is, from the interface's perspective, a change from
        // the old effective rule list to the new one.
        auto bit = binding_cache_.find({node, change.detail});
        const auto old_names = bit != binding_cache_.end()
                                   ? bit->second
                                   : std::pair<std::string, std::string>{};
        const auto* iface =
            snap_->configs[node].find_interface(change.detail);
        std::pair<std::string, std::string> new_names;
        if (iface) new_names = {iface->acl_in, iface->acl_out};
        auto resolve_new = [&](const std::string& name)
            -> const std::vector<config::AclRule>& {
          const config::AclConfig* acl =
              name.empty() ? nullptr : snap_->configs[node].find_acl(name);
          return acl ? acl->rules : permit_all_rules();
        };
        for (const Ipv4Prefix& dst :
             acl_dirty_dsts(cached_rules(node, old_names.first),
                            resolve_new(new_names.first))) {
          dirty_prefixes.push_back(dst);
        }
        for (const Ipv4Prefix& dst :
             acl_dirty_dsts(cached_rules(node, old_names.second),
                            resolve_new(new_names.second))) {
          dirty_prefixes.push_back(dst);
        }
        nodes_to_refresh.insert(node);
        break;
      }
      case config::ChangeKind::kInterfaceModified:
      case config::ChangeKind::kInterfaceAdded:
      case config::ChangeKind::kInterfaceRemoved:
        // Probe source addresses may have changed; conservatively
        // re-verify everything. (Such edits usually come with FIB churn.)
        all_dirty = true;
        nodes_to_refresh.insert(node);
        break;
      default:
        break;
    }
  }
  for (topo::NodeId node : nodes_to_refresh) refresh_acl_cache(node);
  // Link state changes gate edges in reach computation; FIB deltas usually
  // accompany them, but an OSPF-less link (e.g. pure BGP fabrics where the
  // session survives) can change reachability without FIB churn only if the
  // session broke — which does produce FIB churn. ACL-only paths are the
  // ones that need the prefix treatment above.

  // ---- Update the EC index and rebuild dirty LPM tables -------------------
  std::set<EcId> affected;
  for (const auto& [node, delta] : fib_delta.by_node) {
    lpm_[node].rebuild((*fibs_)[node]);
    (void)delta;
  }
  for (const Ipv4Prefix& prefix : dirty_prefixes) {
    // Atoms created by splits inherit the parent's pre-change state so that
    // the before/after diff below is against what this address range really
    // did before the change.
    for (auto [child, parent] : index_.insert_prefix(prefix)) {
      graphs_[child] = graphs_.at(parent);
      reaches_[child] = reaches_.at(parent);
      affected.insert(child);
    }
    for (EcId ec : index_.covering(prefix)) affected.insert(ec);
  }
  if (all_dirty) {
    affected.clear();
    for (EcId ec = 0; ec < index_.num_atoms(); ++ec) affected.insert(ec);
  }
  timers_.add("ec-index", sw.elapsed_seconds());
  sw.reset();

  // ---- Re-verify affected atoms and diff --------------------------------
  ReachDelta out;
  const size_t n = snap_->topology.num_nodes();
  for (EcId ec : affected) {
    EcReach old_reach = std::move(reaches_.at(ec));
    verify_ec(ec);
    const EcReach& now = reaches_[ec];
    const auto& range = index_.range(ec);
    for (topo::NodeId src = 0; src < n; ++src) {
      const DynamicBitset& before = old_reach.delivered[src];
      for (uint32_t dst : now.delivered[src].minus(before)) {
        out.gained.push_back({src, dst, range.lo, range.hi});
      }
      for (uint32_t dst : before.minus(now.delivered[src])) {
        out.lost.push_back({src, dst, range.lo, range.hi});
      }
      const bool loop_before = old_reach.loop.test(src);
      const bool loop_now = now.loop.test(src);
      if (loop_now && !loop_before) {
        out.loops_gained.push_back({src, range.lo, range.hi});
      } else if (!loop_now && loop_before) {
        out.loops_lost.push_back({src, range.lo, range.hi});
      }
      const bool bh_before = old_reach.blackhole.test(src);
      const bool bh_now = now.blackhole.test(src);
      if (bh_now && !bh_before) {
        out.blackholes_gained.push_back({src, range.lo, range.hi});
      } else if (!bh_now && bh_before) {
        out.blackholes_lost.push_back({src, range.lo, range.hi});
      }
    }
  }
  last_affected_ = affected.size();
  timers_.add("verify", sw.elapsed_seconds());
  out.canonicalize();
  return out;
}

std::vector<ReachFact> Verifier::all_reach_facts() const {
  std::vector<ReachFact> facts;
  const size_t n = snap_->topology.num_nodes();
  for (const auto& [ec, reach] : reaches_) {
    const auto& range = index_.range(ec);
    for (topo::NodeId src = 0; src < n; ++src) {
      for (uint32_t dst : reach.delivered[src].to_indices()) {
        facts.push_back({src, dst, range.lo, range.hi});
      }
    }
  }
  canonicalize_facts(facts);
  return facts;
}

std::vector<FlagFact> Verifier::all_loop_facts() const {
  std::vector<FlagFact> facts;
  for (const auto& [ec, reach] : reaches_) {
    const auto& range = index_.range(ec);
    for (uint32_t src : reach.loop.to_indices()) {
      facts.push_back({src, range.lo, range.hi});
    }
  }
  canonicalize_facts(facts);
  return facts;
}

std::vector<FlagFact> Verifier::all_blackhole_facts() const {
  std::vector<FlagFact> facts;
  for (const auto& [ec, reach] : reaches_) {
    const auto& range = index_.range(ec);
    for (uint32_t src : reach.blackhole.to_indices()) {
      facts.push_back({src, range.lo, range.hi});
    }
  }
  canonicalize_facts(facts);
  return facts;
}

}  // namespace dna::dp
