// Per-equivalence-class forwarding graphs.
#pragma once

#include <vector>

#include "dataplane/fib.h"
#include "topo/snapshot.h"

namespace dna::dp {

/// One node's forwarding verdict for an EC's representative address.
struct NodeVerdict {
  enum class Kind : uint8_t { kDrop, kLocal, kForward };
  Kind kind = Kind::kDrop;
  std::vector<cp::Hop> hops;  // for kForward

  bool operator==(const NodeVerdict&) const = default;
};

/// The whole network's forwarding behaviour for one EC.
struct EcGraph {
  std::vector<NodeVerdict> verdicts;  // by node id

  bool operator==(const EcGraph&) const = default;
};

/// Builds the EC graph by LPM lookup of `rep` at every node.
EcGraph build_ec_graph(const topo::Snapshot& snapshot,
                       const std::vector<LpmTable>& lpm, Ipv4Addr rep);

}  // namespace dna::dp
