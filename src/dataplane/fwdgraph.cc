#include "dataplane/fwdgraph.h"

namespace dna::dp {

EcGraph build_ec_graph(const topo::Snapshot& snapshot,
                       const std::vector<LpmTable>& lpm, Ipv4Addr rep) {
  EcGraph graph;
  const size_t n = snapshot.topology.num_nodes();
  graph.verdicts.resize(n);
  for (size_t node = 0; node < n; ++node) {
    const cp::FibEntry* entry = lpm[node].lookup(rep);
    NodeVerdict& verdict = graph.verdicts[node];
    if (!entry) {
      verdict.kind = NodeVerdict::Kind::kDrop;
    } else if (entry->action == cp::FibEntry::Action::kLocal) {
      verdict.kind = NodeVerdict::Kind::kLocal;
    } else {
      verdict.kind = NodeVerdict::Kind::kForward;
      verdict.hops = entry->hops;
    }
  }
  return graph;
}

}  // namespace dna::dp
