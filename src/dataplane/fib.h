// Longest-prefix-match lookup over a node's FIB.
#pragma once

#include <unordered_map>

#include "controlplane/route.h"

namespace dna::dp {

/// Hash-probing LPM: one exact-match table, probed from /32 down to /0.
/// Rebuilt per node whenever that node's FIB changes (cheap relative to
/// re-verification, and only dirty nodes are rebuilt).
class LpmTable {
 public:
  LpmTable() = default;
  explicit LpmTable(const cp::Fib& fib) { rebuild(fib); }

  void rebuild(const cp::Fib& fib);

  /// The longest-prefix entry covering `addr`, or nullptr (drop).
  const cp::FibEntry* lookup(Ipv4Addr addr) const;

  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<Ipv4Prefix, cp::FibEntry> entries_;
  uint64_t present_lengths_ = 0;  // bit l set => some entry has length l
};

}  // namespace dna::dp
