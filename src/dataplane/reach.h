// Per-EC reachability analysis: delivery sets, loops, blackholes.
#pragma once

#include "dataplane/fwdgraph.h"
#include "util/bitset.h"

namespace dna::dp {

/// Reachability of one EC from every ingress node.
struct EcReach {
  /// delivered[src].test(dst): a probe injected at src (with src's probe
  /// address) is delivered locally at dst.
  std::vector<DynamicBitset> delivered;
  DynamicBitset loop;       // by src: a forwarding cycle is reachable
  DynamicBitset blackhole;  // by src: a drop (no route / ACL / dead end)
                            // is reachable

  bool operator==(const EcReach&) const = default;
};

/// Walks the EC graph from every source, applying out-ACLs at the sending
/// interface and in-ACLs at the receiving interface with the source node's
/// probe address.
EcReach compute_reach(const topo::Snapshot& snapshot, const EcGraph& graph,
                      Ipv4Addr rep);

}  // namespace dna::dp
