#include "dataplane/acl_eval.h"

namespace dna::dp {

bool acl_permits(const config::NodeConfig& cfg, const std::string& acl_name,
                 const Probe& probe) {
  if (acl_name.empty()) return true;
  const config::AclConfig* acl = cfg.find_acl(acl_name);
  if (!acl) return true;  // dangling reference: no filter attached
  for (const config::AclRule& rule : acl->rules) {
    if (rule.proto >= 0 || rule.dst_port_lo >= 0) continue;  // L4: no match
    if (!rule.src.contains(probe.src)) continue;
    if (!rule.dst.contains(probe.dst)) continue;
    return rule.action == config::FilterAction::kPermit;
  }
  return false;  // implicit deny
}

Ipv4Addr probe_source_address(const config::NodeConfig& cfg) {
  for (const auto& iface : cfg.interfaces) {
    if (iface.name == "lo" && iface.enabled) return iface.address;
  }
  for (const auto& iface : cfg.interfaces) {
    if (iface.enabled) return iface.address;
  }
  return Ipv4Addr();
}

}  // namespace dna::dp
