// Operator node interface for the dataflow graph.
//
// Nodes receive batches of signed deltas on numbered input ports, update any
// internal state, and emit output deltas. The Graph (graph.h) wires nodes
// into a DAG and drives them one epoch at a time in topological order, so a
// node sees all of an epoch's input before it must produce output.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "dataflow/row.h"

namespace dna::dataflow {

/// Identifies a node inside its owning Graph.
using NodeId = uint32_t;

class Node {
 public:
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Delivers one epoch's consolidated deltas arriving on `port`.
  /// Implementations buffer their output via emit(); the graph collects it
  /// with take_output() after all ports have been fed.
  virtual void on_input(int port, const DeltaVec& deltas) = 0;

  /// Number of input ports this node accepts.
  virtual int arity() const { return 1; }

  const std::string& name() const { return name_; }

 protected:
  explicit Node(std::string name) : name_(std::move(name)) {}

  void emit(Row row, int64_t mult) {
    if (mult != 0) output_.push_back({std::move(row), mult});
  }
  void emit(const DeltaVec& deltas) {
    output_.insert(output_.end(), deltas.begin(), deltas.end());
  }

 private:
  friend class Graph;

  DeltaVec take_output() {
    DeltaVec out = consolidate(output_);
    output_.clear();
    return out;
  }

  std::string name_;
  DeltaVec output_;
};

}  // namespace dna::dataflow
