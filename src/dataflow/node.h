// Operator node interface for the dataflow graph.
//
// Nodes receive batches of signed deltas on numbered input ports, update any
// internal state, and emit output deltas. The Graph (graph.h) wires nodes
// into a DAG and drives them one epoch at a time in topological order, so a
// node sees all of an epoch's input before it must produce output.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "dataflow/row.h"

namespace dna::dataflow {

/// Identifies a node inside its owning Graph.
using NodeId = uint32_t;

class Node {
 public:
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Delivers one epoch's consolidated deltas arriving on `port`.
  /// Implementations buffer their output via emit(); the graph collects it
  /// with take_output() after all ports have been fed.
  virtual void on_input(int port, const DeltaVec& deltas) = 0;

  /// Number of input ports this node accepts.
  virtual int arity() const { return 1; }

  /// Resident rows of indexed state (join sides, reduce groups, distinct
  /// counts); 0 for stateless nodes. Exposed so tests can assert that state
  /// drains back to baseline under insert/retract churn.
  virtual size_t state_size() const { return 0; }

  const std::string& name() const { return name_; }

 protected:
  explicit Node(std::string name) : name_(std::move(name)) {}

  void emit(Row row, int64_t mult) {
    if (mult != 0) output_.push_back({std::move(row), mult});
  }
  void emit(const DeltaVec& deltas) {
    output_.insert(output_.end(), deltas.begin(), deltas.end());
  }

 private:
  friend class Graph;

  /// Consolidates the epoch's output in place and hands the graph a view of
  /// it. The graph fans the batch out to successors and then calls
  /// clear_output(), so the buffer's capacity is recycled across epochs.
  DeltaVec& take_output() {
    consolidate_in_place(output_);
    return output_;
  }
  void clear_output() { output_.clear(); }

  std::string name_;
  DeltaVec output_;
};

}  // namespace dna::dataflow
