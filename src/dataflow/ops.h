// Concrete dataflow operators.
//
// Every operator is fully incremental: given input deltas it produces exactly
// the deltas of its output collection, maintaining whatever indexed state it
// needs. Multiset semantics throughout; Distinct converts to set semantics.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dataflow/node.h"
#include "util/flat_map.h"

namespace dna::dataflow {

/// Entry point for external changes; forwards pushed deltas unchanged.
class InputNode final : public Node {
 public:
  explicit InputNode(std::string name) : Node(std::move(name)) {}
  void on_input(int port, const DeltaVec& deltas) override;
};

/// Applies a function to each row; multiplicities pass through.
class MapNode final : public Node {
 public:
  using Fn = std::function<Row(const Row&)>;
  MapNode(std::string name, Fn fn) : Node(std::move(name)), fn_(std::move(fn)) {}
  void on_input(int port, const DeltaVec& deltas) override;

 private:
  Fn fn_;
};

/// Expands each row into zero or more rows; multiplicities pass through.
class FlatMapNode final : public Node {
 public:
  using Fn = std::function<std::vector<Row>(const Row&)>;
  FlatMapNode(std::string name, Fn fn)
      : Node(std::move(name)), fn_(std::move(fn)) {}
  void on_input(int port, const DeltaVec& deltas) override;

 private:
  Fn fn_;
};

/// Keeps rows satisfying a predicate.
class FilterNode final : public Node {
 public:
  using Fn = std::function<bool(const Row&)>;
  FilterNode(std::string name, Fn fn)
      : Node(std::move(name)), fn_(std::move(fn)) {}
  void on_input(int port, const DeltaVec& deltas) override;

 private:
  Fn fn_;
};

/// Multiset union of any number of inputs (sum of multiplicities).
class UnionNode final : public Node {
 public:
  UnionNode(std::string name, int arity)
      : Node(std::move(name)), arity_(arity) {}
  void on_input(int port, const DeltaVec& deltas) override;
  int arity() const override { return arity_; }

 private:
  int arity_;
};

/// Set-semantics gate: output multiplicity is 1 while the input row's net
/// multiplicity is positive, 0 otherwise.
class DistinctNode final : public Node {
 public:
  explicit DistinctNode(std::string name) : Node(std::move(name)) {}
  void on_input(int port, const DeltaVec& deltas) override;

  const Multiset& state() const { return state_; }
  size_t state_size() const override { return state_.size(); }

 private:
  Multiset state_;  // row -> net input multiplicity (> 0)
};

/// Key-indexed rows for one join input: a flat map from key row to a run of
/// (row, multiplicity) entries sharing that key. The map stores the key's
/// hash alongside it, so probes by projected columns (hash_projected /
/// equals_projected) never materialize a key row; runs are contiguous, so
/// matching a delta against the other side is a linear scan instead of a
/// second hash table walk. Runs with small fan-out (the common case for
/// network relations) stay in one cache line.
class SideIndex {
 public:
  using Run = std::vector<Delta>;  // rows under one key; mults never zero

  /// The run stored under the projection of `row` by `key_columns`, or
  /// nullptr if the key is absent. `key_hash` must be
  /// hash_projected(row, key_columns); the overload computes it.
  const Run* find(const Row& row, const std::vector<int>& key_columns,
                  size_t key_hash) const;
  const Run* find(const Row& row, const std::vector<int>& key_columns) const {
    return find(row, key_columns, hash_projected(row, key_columns));
  }

  /// Adds `mult` copies of `row` under its projected key, creating the key
  /// on first use and erasing it again when its run drains empty (long-lived
  /// sessions must not accumulate dead keys). `key_hash` as in find(): the
  /// operators probe and update with one hash computation per delta.
  void update(const Row& row, const std::vector<int>& key_columns,
              int64_t mult, size_t key_hash);
  void update(const Row& row, const std::vector<int>& key_columns,
              int64_t mult) {
    update(row, key_columns, mult, hash_projected(row, key_columns));
  }

  size_t num_keys() const { return keys_.size(); }
  size_t num_rows() const { return num_rows_; }

 private:
  util::FlatMap<Row, Run, RowHash> keys_;
  size_t num_rows_ = 0;
};

/// Binary equi-join. Port 0 is the left input, port 1 the right. Keys are
/// column projections; `combine` builds the output row from a matching pair.
///
/// Incremental rule: out' = dL >< R_old + L_new >< dR, which the node realizes
/// by processing left deltas against the right state as of the epoch start,
/// then right deltas against the already-updated left state. The Graph feeds
/// port 0 before port 1 within an epoch.
class JoinNode final : public Node {
 public:
  using Combine = std::function<Row(const Row& left, const Row& right)>;

  JoinNode(std::string name, std::vector<int> left_key,
           std::vector<int> right_key, Combine combine)
      : Node(std::move(name)),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        combine_(std::move(combine)) {}

  void on_input(int port, const DeltaVec& deltas) override;
  int arity() const override { return 2; }
  size_t state_size() const override {
    return left_.num_rows() + right_.num_rows();
  }

 private:
  std::vector<int> left_key_;
  std::vector<int> right_key_;
  Combine combine_;
  SideIndex left_;
  SideIndex right_;
};

/// Anti-join (negation): emits left rows whose key has no match on the right.
/// Left rows keep their multiplicity; the right side acts as a set.
class AntiJoinNode final : public Node {
 public:
  AntiJoinNode(std::string name, std::vector<int> left_key,
               std::vector<int> right_key)
      : Node(std::move(name)),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)) {}

  void on_input(int port, const DeltaVec& deltas) override;
  int arity() const override { return 2; }
  size_t state_size() const override {
    return left_.num_rows() + right_.size();
  }

 private:
  std::vector<int> left_key_;
  std::vector<int> right_key_;
  SideIndex left_;                                  // key -> left rows
  util::FlatMap<Row, int64_t, RowHash> right_;      // key -> net count
};

/// Group-and-aggregate. Groups input rows by a key projection and emits one
/// output row per non-empty group, recomputing groups touched by the epoch's
/// deltas and retracting their previous output.
class ReduceNode final : public Node {
 public:
  /// Aggregate over one group: receives the group's consolidated rows with
  /// positive multiplicities; returns the aggregate row (the key columns are
  /// prepended by the node, so return only the aggregate values).
  using Aggregate = std::function<Row(const Multiset& group)>;

  ReduceNode(std::string name, std::vector<int> key, Aggregate agg)
      : Node(std::move(name)), key_(std::move(key)), agg_(std::move(agg)) {}

  void on_input(int port, const DeltaVec& deltas) override;
  size_t state_size() const override {
    return groups_.size() + last_output_.size();
  }

 private:
  std::vector<int> key_;
  Aggregate agg_;
  util::FlatMap<Row, Multiset, RowHash> groups_;      // key -> rows
  util::FlatMap<Row, Row, RowHash> last_output_;      // key -> agg row
  std::vector<Row> touched_;                          // epoch scratch
};

/// Common aggregates for ReduceNode.
ReduceNode::Aggregate agg_count();
ReduceNode::Aggregate agg_sum(int column);
ReduceNode::Aggregate agg_min(int column);
ReduceNode::Aggregate agg_max(int column);

/// Terminal node: accumulates the consolidated output collection and records
/// the deltas of the most recent epoch for observers.
class OutputNode final : public Node {
 public:
  explicit OutputNode(std::string name) : Node(std::move(name)) {}
  void on_input(int port, const DeltaVec& deltas) override;

  /// The full collection as of the last completed epoch.
  const Multiset& state() const { return state_; }
  size_t state_size() const override { return state_.size(); }

  /// Deltas applied during the last epoch (consolidated); reset by the
  /// graph at the start of every step().
  const DeltaVec& last_deltas() const { return last_deltas_; }
  void clear_last_deltas() { last_deltas_.clear(); }

 private:
  friend class Graph;
  Multiset state_;
  DeltaVec last_deltas_;
};

}  // namespace dna::dataflow
