#include "dataflow/row.h"

namespace dna::dataflow {

DeltaVec consolidate(const DeltaVec& deltas) {
  Multiset sums;
  for (const Delta& d : deltas) {
    if (d.mult == 0) continue;
    auto [it, inserted] = sums.try_emplace(d.row, d.mult);
    if (!inserted) {
      it->second += d.mult;
      if (it->second == 0) sums.erase(it);
    }
  }
  DeltaVec out;
  out.reserve(sums.size());
  for (auto& [row, mult] : sums) out.push_back({row, mult});
  return out;
}

DeltaVec apply_to_multiset(Multiset& state, const DeltaVec& deltas) {
  DeltaVec sign_changes;
  for (const Delta& d : deltas) {
    if (d.mult == 0) continue;
    auto [it, inserted] = state.try_emplace(d.row, 0);
    const int64_t before = it->second;
    it->second += d.mult;
    const int64_t after = it->second;
    if (after == 0) state.erase(it);
    if (before == 0 && after != 0) {
      sign_changes.push_back({d.row, +1});
    } else if (before != 0 && after == 0) {
      sign_changes.push_back({d.row, -1});
    }
  }
  return sign_changes;
}

Row project(const Row& row, const std::vector<int>& columns) {
  Row out;
  out.reserve(columns.size());
  for (int c : columns) out.push_back(row[static_cast<size_t>(c)]);
  return out;
}

}  // namespace dna::dataflow
