#include "dataflow/row.h"

namespace dna::dataflow {

void consolidate_in_place(DeltaVec& deltas) {
  const size_t n = deltas.size();
  if (n == 0) return;
  if (n == 1) {
    if (deltas[0].mult == 0) deltas.clear();
    return;
  }

  // Sort-based consolidation, but over lightweight (hash, index) pairs so
  // the sort never moves a 50-byte Delta — equal rows have equal hashes and
  // end up adjacent, then each hash run is merged with at most a handful of
  // row comparisons. No temporary hash map, no per-delta allocation: both
  // scratch buffers are thread-local and keep their capacity across epochs.
  static thread_local std::vector<std::pair<uint64_t, uint32_t>> order;
  static thread_local DeltaVec merged;
  // Bound the high-water mark: a one-off bulk epoch (initial snapshot load)
  // must not pin megabytes on every pool thread forever. Capacity under the
  // threshold is never released, so steady-state epochs stay allocation-free.
  constexpr size_t kShrinkThreshold = 1 << 16;
  order.clear();
  merged.clear();
  if (order.capacity() > kShrinkThreshold && n < order.capacity() / 8) {
    order.shrink_to_fit();
    merged.shrink_to_fit();
  }
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    order.push_back({RowHash{}(deltas[i].row), static_cast<uint32_t>(i)});
  }
  // Sorting by (hash, index) keeps the result canonical: any batch
  // describing the same multiset consolidates to the same row order
  // (modulo 64-bit hash collisions, where first-encounter order decides).
  std::sort(order.begin(), order.end());

  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && order[j].first == order[i].first) ++j;
    // order[i..j): one hash run — almost always a single distinct row.
    const size_t group_start = merged.size();
    for (size_t k = i; k < j; ++k) {
      Delta& d = deltas[order[k].second];
      bool folded = false;
      for (size_t g = group_start; g < merged.size(); ++g) {
        if (merged[g].row == d.row) {
          merged[g].mult += d.mult;
          folded = true;
          break;
        }
      }
      if (!folded && d.mult != 0) merged.push_back(std::move(d));
    }
    // Drop groups that cancelled to zero (swap-remove stays within the run).
    size_t g = group_start;
    while (g < merged.size()) {
      if (merged[g].mult == 0) {
        merged[g] = std::move(merged.back());
        merged.pop_back();
      } else {
        ++g;
      }
    }
    i = j;
  }
  std::swap(deltas, merged);
}

DeltaVec consolidate(const DeltaVec& deltas) {
  DeltaVec out = deltas;
  consolidate_in_place(out);
  return out;
}

DeltaVec apply_to_multiset(Multiset& state, const DeltaVec& deltas) {
  DeltaVec sign_changes;
  sign_changes.reserve(deltas.size());
  for (const Delta& d : deltas) {
    if (d.mult == 0) continue;
    auto [it, inserted] = state.try_emplace(d.row, 0);
    const int64_t before = it->second;
    it->second += d.mult;
    const int64_t after = it->second;
    if (after == 0) state.erase(it);
    if (before == 0 && after != 0) {
      sign_changes.push_back({d.row, +1});
    } else if (before != 0 && after == 0) {
      sign_changes.push_back({d.row, -1});
    }
  }
  return sign_changes;
}

Row project(const Row& row, const std::vector<int>& columns) {
  Row out;
  out.reserve(columns.size());
  for (int c : columns) out.push_back(row[static_cast<size_t>(c)]);
  return out;
}

}  // namespace dna::dataflow
