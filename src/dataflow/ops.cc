#include "dataflow/ops.h"

#include <algorithm>

#include "util/error.h"

namespace dna::dataflow {

void InputNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  emit(deltas);
}

void MapNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  for (const Delta& d : deltas) emit(fn_(d.row), d.mult);
}

void FlatMapNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  for (const Delta& d : deltas) {
    for (Row& row : fn_(d.row)) emit(std::move(row), d.mult);
  }
}

void FilterNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  for (const Delta& d : deltas) {
    if (fn_(d.row)) emit(d.row, d.mult);
  }
}

void UnionNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port >= 0 && port < arity_);
  emit(deltas);
}

void DistinctNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  emit(apply_to_multiset(state_, deltas));
}

void JoinNode::update_side(Side& side, const Row& key, const Row& row,
                           int64_t mult) {
  Multiset& rows = side[key];
  auto [it, inserted] = rows.try_emplace(row, 0);
  it->second += mult;
  if (it->second == 0) {
    rows.erase(it);
    if (rows.empty()) side.erase(key);
  }
}

void JoinNode::on_input(int port, const DeltaVec& deltas) {
  if (port == 0) {
    // dL joined against the right state as of the epoch start (the graph
    // delivers port 0 before port 1, so right_ is still pre-epoch here).
    for (const Delta& d : deltas) {
      Row key = project(d.row, left_key_);
      auto it = right_.find(key);
      if (it != right_.end()) {
        for (const auto& [rrow, rmult] : it->second) {
          emit(combine_(d.row, rrow), d.mult * rmult);
        }
      }
      update_side(left_, key, d.row, d.mult);
    }
  } else {
    DNA_CHECK(port == 1);
    // dR joined against the updated left state (L_new).
    for (const Delta& d : deltas) {
      Row key = project(d.row, right_key_);
      auto it = left_.find(key);
      if (it != left_.end()) {
        for (const auto& [lrow, lmult] : it->second) {
          emit(combine_(lrow, d.row), lmult * d.mult);
        }
      }
      update_side(right_, key, d.row, d.mult);
    }
  }
}

void AntiJoinNode::on_input(int port, const DeltaVec& deltas) {
  if (port == 0) {
    for (const Delta& d : deltas) {
      Row key = project(d.row, left_key_);
      // Emit only if the key currently has no right match.
      auto rit = right_.find(key);
      if (rit == right_.end() || rit->second == 0) emit(d.row, d.mult);
      Multiset& rows = left_[key];
      auto [it, inserted] = rows.try_emplace(d.row, 0);
      it->second += d.mult;
      if (it->second == 0) {
        rows.erase(it);
        if (rows.empty()) left_.erase(key);
      }
    }
  } else {
    DNA_CHECK(port == 1);
    for (const Delta& d : deltas) {
      Row key = project(d.row, right_key_);
      auto [it, inserted] = right_.try_emplace(key, 0);
      const int64_t before = it->second;
      it->second += d.mult;
      const int64_t after = it->second;
      DNA_CHECK_MSG(after >= 0, "anti-join right side went negative");
      if (after == 0) right_.erase(it);
      const bool was_present = before > 0;
      const bool now_present = after > 0;
      if (was_present == now_present) continue;
      auto lit = left_.find(key);
      if (lit == left_.end()) continue;
      // Key flipped: retract (or re-emit) every current left row under it.
      const int64_t sign = now_present ? -1 : +1;
      for (const auto& [lrow, lmult] : lit->second) emit(lrow, sign * lmult);
    }
  }
}

void ReduceNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  // Collect affected groups, apply deltas, then recompute each group once.
  std::vector<Row> touched;
  for (const Delta& d : deltas) {
    Row key = project(d.row, key_);
    Multiset& group = groups_[key];
    auto [it, inserted] = group.try_emplace(d.row, 0);
    if (it->second == 0 && !inserted) {
      // unreachable: zero entries are erased eagerly
    }
    it->second += d.mult;
    DNA_CHECK_MSG(it->second >= 0, "reduce group multiplicity went negative");
    if (it->second == 0) group.erase(it);
    touched.push_back(std::move(key));
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  for (const Row& key : touched) {
    auto git = groups_.find(key);
    std::optional<Row> next;
    if (git != groups_.end() && !git->second.empty()) {
      Row agg = agg_(git->second);
      Row out = key;
      out.insert(out.end(), agg.begin(), agg.end());
      next = std::move(out);
    } else if (git != groups_.end()) {
      groups_.erase(git);
    }
    auto oit = last_output_.find(key);
    const bool had = oit != last_output_.end();
    if (had && next && oit->second == *next) continue;
    if (had) emit(oit->second, -1);
    if (next) {
      emit(*next, +1);
      last_output_[key] = std::move(*next);
    } else if (had) {
      last_output_.erase(oit);
    }
  }
}

ReduceNode::Aggregate agg_count() {
  return [](const Multiset& group) {
    int64_t n = 0;
    for (const auto& [row, mult] : group) n += mult;
    return Row{n};
  };
}

ReduceNode::Aggregate agg_sum(int column) {
  return [column](const Multiset& group) {
    int64_t sum = 0;
    for (const auto& [row, mult] : group) {
      sum += row[static_cast<size_t>(column)] * mult;
    }
    return Row{sum};
  };
}

ReduceNode::Aggregate agg_min(int column) {
  return [column](const Multiset& group) {
    bool first = true;
    int64_t best = 0;
    for (const auto& [row, mult] : group) {
      (void)mult;
      int64_t v = row[static_cast<size_t>(column)];
      if (first || v < best) best = v;
      first = false;
    }
    return Row{best};
  };
}

ReduceNode::Aggregate agg_max(int column) {
  return [column](const Multiset& group) {
    bool first = true;
    int64_t best = 0;
    for (const auto& [row, mult] : group) {
      (void)mult;
      int64_t v = row[static_cast<size_t>(column)];
      if (first || v > best) best = v;
      first = false;
    }
    return Row{best};
  };
}

void OutputNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  for (const Delta& d : deltas) {
    auto [it, inserted] = state_.try_emplace(d.row, 0);
    it->second += d.mult;
    if (it->second == 0) state_.erase(it);
  }
  // The graph clears last_deltas_ at the start of each epoch, so this
  // records exactly the epoch's (already consolidated) changes.
  last_deltas_.insert(last_deltas_.end(), deltas.begin(), deltas.end());
}

}  // namespace dna::dataflow
