#include "dataflow/ops.h"

#include <algorithm>

#include "util/error.h"

namespace dna::dataflow {

void InputNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  emit(deltas);
}

void MapNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  for (const Delta& d : deltas) emit(fn_(d.row), d.mult);
}

void FlatMapNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  for (const Delta& d : deltas) {
    for (Row& row : fn_(d.row)) emit(std::move(row), d.mult);
  }
}

void FilterNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  for (const Delta& d : deltas) {
    if (fn_(d.row)) emit(d.row, d.mult);
  }
}

void UnionNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port >= 0 && port < arity_);
  emit(deltas);
}

void DistinctNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  // Inlined apply_to_multiset: sign changes go straight to emit() instead of
  // through a temporary DeltaVec, keeping the epoch allocation-free.
  for (const Delta& d : deltas) {
    if (d.mult == 0) continue;
    auto [it, inserted] = state_.try_emplace(d.row, 0);
    const int64_t before = it->second;
    it->second += d.mult;
    const int64_t after = it->second;
    if (after == 0) state_.erase(it);
    if (before == 0 && after != 0) {
      emit(d.row, +1);
    } else if (before != 0 && after == 0) {
      emit(d.row, -1);
    }
  }
}

const SideIndex::Run* SideIndex::find(const Row& row,
                                      const std::vector<int>& key_columns,
                                      size_t key_hash) const {
  auto it = keys_.find_hashed(key_hash, [&](const Row& key) {
    return equals_projected(row, key_columns, key);
  });
  return it == keys_.end() ? nullptr : &it->second;
}

void SideIndex::update(const Row& row, const std::vector<int>& key_columns,
                       int64_t mult, size_t key_hash) {
  auto [it, inserted] = keys_.try_emplace_hashed(
      key_hash,
      [&](const Row& key) { return equals_projected(row, key_columns, key); },
      [&] { return project(row, key_columns); });
  Run& run = it->second;
  for (Delta& entry : run) {
    if (entry.row == row) {
      entry.mult += mult;
      if (entry.mult == 0) {
        // Order within a run carries no meaning (every consumer's output is
        // re-consolidated), so swap-remove keeps the erase O(1).
        entry = std::move(run.back());
        run.pop_back();
        --num_rows_;
        if (run.empty()) keys_.erase(it);
      }
      return;
    }
  }
  run.push_back({row, mult});
  ++num_rows_;
}

void JoinNode::on_input(int port, const DeltaVec& deltas) {
  if (port == 0) {
    // dL joined against the right state as of the epoch start (the graph
    // delivers port 0 before port 1, so right_ is still pre-epoch here).
    for (const Delta& d : deltas) {
      // Both sides project by the same key values, so one hash serves the
      // probe of the other side and the update of our own.
      const size_t h = hash_projected(d.row, left_key_);
      if (const SideIndex::Run* run = right_.find(d.row, left_key_, h)) {
        for (const Delta& r : *run) {
          emit(combine_(d.row, r.row), d.mult * r.mult);
        }
      }
      left_.update(d.row, left_key_, d.mult, h);
    }
  } else {
    DNA_CHECK(port == 1);
    // dR joined against the updated left state (L_new).
    for (const Delta& d : deltas) {
      const size_t h = hash_projected(d.row, right_key_);
      if (const SideIndex::Run* run = left_.find(d.row, right_key_, h)) {
        for (const Delta& l : *run) {
          emit(combine_(l.row, d.row), l.mult * d.mult);
        }
      }
      right_.update(d.row, right_key_, d.mult, h);
    }
  }
}

void AntiJoinNode::on_input(int port, const DeltaVec& deltas) {
  if (port == 0) {
    for (const Delta& d : deltas) {
      // Emit only if the key currently has no right match. Zero-count right
      // keys are eagerly erased on port 1, so presence in the map means a
      // positive count.
      const size_t h = hash_projected(d.row, left_key_);
      auto rit = right_.find_hashed(h, [&](const Row& key) {
        return equals_projected(d.row, left_key_, key);
      });
      if (rit == right_.end()) emit(d.row, d.mult);
      left_.update(d.row, left_key_, d.mult, h);
    }
  } else {
    DNA_CHECK(port == 1);
    for (const Delta& d : deltas) {
      const size_t h = hash_projected(d.row, right_key_);
      auto eq = [&](const Row& key) {
        return equals_projected(d.row, right_key_, key);
      };
      auto [it, inserted] = right_.try_emplace_hashed(
          h, eq, [&] { return project(d.row, right_key_); }, 0);
      const int64_t before = it->second;
      it->second += d.mult;
      const int64_t after = it->second;
      DNA_CHECK_MSG(after >= 0, "anti-join right side went negative");
      if (after == 0) right_.erase(it);
      const bool was_present = before > 0;
      const bool now_present = after > 0;
      if (was_present == now_present) continue;
      const SideIndex::Run* run = left_.find(d.row, right_key_);
      if (run == nullptr) continue;
      // Key flipped: retract (or re-emit) every current left row under it.
      const int64_t sign = now_present ? -1 : +1;
      for (const Delta& l : *run) emit(l.row, sign * l.mult);
    }
  }
}

void ReduceNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  // Collect affected groups, apply deltas, then recompute each group once.
  touched_.clear();
  for (const Delta& d : deltas) {
    auto [git, inserted] = groups_.try_emplace_hashed(
        hash_projected(d.row, key_),
        [&](const Row& key) { return equals_projected(d.row, key_, key); },
        [&] { return project(d.row, key_); });
    touched_.push_back(git->first);
    Multiset& group = git->second;
    auto [it, fresh] = group.try_emplace(d.row, 0);
    it->second += d.mult;
    DNA_CHECK_MSG(it->second >= 0, "reduce group multiplicity went negative");
    if (it->second == 0) group.erase(it);
  }
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()),
                 touched_.end());

  for (const Row& key : touched_) {
    auto git = groups_.find(key);
    std::optional<Row> next;
    if (git != groups_.end() && !git->second.empty()) {
      Row agg = agg_(git->second);
      Row out = key;
      out.append(agg.begin(), agg.end());
      next = std::move(out);
    } else if (git != groups_.end()) {
      groups_.erase(git);
    }
    auto oit = last_output_.find(key);
    const bool had = oit != last_output_.end();
    if (had && next && oit->second == *next) continue;
    if (had) emit(oit->second, -1);
    if (next) {
      emit(*next, +1);
      last_output_[key] = std::move(*next);
    } else if (had) {
      last_output_.erase(oit);
    }
  }
}

ReduceNode::Aggregate agg_count() {
  return [](const Multiset& group) {
    int64_t n = 0;
    for (const auto& [row, mult] : group) n += mult;
    return Row{n};
  };
}

ReduceNode::Aggregate agg_sum(int column) {
  return [column](const Multiset& group) {
    int64_t sum = 0;
    for (const auto& [row, mult] : group) {
      sum += row[static_cast<size_t>(column)] * mult;
    }
    return Row{sum};
  };
}

ReduceNode::Aggregate agg_min(int column) {
  return [column](const Multiset& group) {
    bool first = true;
    int64_t best = 0;
    for (const auto& [row, mult] : group) {
      (void)mult;
      int64_t v = row[static_cast<size_t>(column)];
      if (first || v < best) best = v;
      first = false;
    }
    return Row{best};
  };
}

ReduceNode::Aggregate agg_max(int column) {
  return [column](const Multiset& group) {
    bool first = true;
    int64_t best = 0;
    for (const auto& [row, mult] : group) {
      (void)mult;
      int64_t v = row[static_cast<size_t>(column)];
      if (first || v > best) best = v;
      first = false;
    }
    return Row{best};
  };
}

void OutputNode::on_input(int port, const DeltaVec& deltas) {
  DNA_CHECK(port == 0);
  for (const Delta& d : deltas) {
    auto [it, inserted] = state_.try_emplace(d.row, 0);
    it->second += d.mult;
    if (it->second == 0) state_.erase(it);
  }
  // The graph clears last_deltas_ at the start of each epoch, so this
  // records exactly the epoch's (already consolidated) changes.
  last_deltas_.insert(last_deltas_.end(), deltas.begin(), deltas.end());
}

}  // namespace dna::dataflow
