// Rows and signed deltas: the currency of the differential dataflow engine.
//
// A Row is a fixed-arity tuple of 64-bit values. Strings are interned to
// symbols by callers (see util/interner.h) so rows stay flat and hashing is
// cheap. A Delta pairs a row with a signed multiplicity: +k inserts, -k
// retracts. Collections are multisets represented as consolidated deltas.
//
// Rows up to arity 4 live entirely inline in SmallRow (no heap traffic per
// delta); wider rows spill to a heap buffer. The network relations this
// engine hosts (edges, reachability triples, aggregates) are arity 2-3, so
// the spill path is the exception, not the rule.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <utility>
#include <vector>

#include "util/flat_map.h"
#include "util/hash.h"

namespace dna::dataflow {

using Value = int64_t;

/// A tuple of Values with inline storage for arity <= kInlineCapacity.
/// API-compatible with the std::vector<Value> it replaced for everything the
/// engine and the datalog layer do: push_back/reserve/indexing/iteration,
/// lexicographic ordering, equality.
class SmallRow {
 public:
  static constexpr size_t kInlineCapacity = 4;

  SmallRow() noexcept : size_(0), heap_cap_(0) {}

  SmallRow(std::initializer_list<Value> values) : SmallRow() {
    assign(values.begin(), values.size());
  }

  /// Implicit bridge from vector-shaped callers (row builders, test data).
  SmallRow(const std::vector<Value>& values) : SmallRow() {
    assign(values.data(), values.size());
  }

  SmallRow(const SmallRow& other) : SmallRow() {
    assign(other.data(), other.size_);
  }

  SmallRow(SmallRow&& other) noexcept : size_(other.size_),
                                        heap_cap_(other.heap_cap_) {
    if (heap_cap_ != 0) {
      heap_ = other.heap_;
    } else {
      std::copy(other.inline_, other.inline_ + size_, inline_);
    }
    other.size_ = 0;
    other.heap_cap_ = 0;
  }

  SmallRow& operator=(const SmallRow& other) {
    if (this != &other) {
      size_ = 0;  // contents are dead; reuse whatever storage we hold
      if (other.size_ > capacity()) grow(other.size_);
      std::copy(other.data(), other.data() + other.size_, data());
      size_ = other.size_;
    }
    return *this;
  }

  SmallRow& operator=(SmallRow&& other) noexcept {
    if (this != &other) {
      release();
      size_ = other.size_;
      heap_cap_ = other.heap_cap_;
      if (heap_cap_ != 0) {
        heap_ = other.heap_;
      } else {
        std::copy(other.inline_, other.inline_ + size_, inline_);
      }
      other.size_ = 0;
      other.heap_cap_ = 0;
    }
    return *this;
  }

  ~SmallRow() { release(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const {
    return heap_cap_ != 0 ? heap_cap_ : kInlineCapacity;
  }
  bool is_inline() const { return heap_cap_ == 0; }

  Value* data() { return heap_cap_ != 0 ? heap_ : inline_; }
  const Value* data() const { return heap_cap_ != 0 ? heap_ : inline_; }

  Value& operator[](size_t i) { return data()[i]; }
  Value operator[](size_t i) const { return data()[i]; }
  Value& front() { return data()[0]; }
  Value front() const { return data()[0]; }
  Value& back() { return data()[size_ - 1]; }
  Value back() const { return data()[size_ - 1]; }

  Value* begin() { return data(); }
  Value* end() { return data() + size_; }
  const Value* begin() const { return data(); }
  const Value* end() const { return data() + size_; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n > capacity()) grow(n);
  }

  void push_back(Value v) {
    if (size_ == capacity()) grow(size_ + 1);
    data()[size_++] = v;
  }

  void pop_back() { --size_; }

  /// Value-initializes (zero) any newly exposed elements, like std::vector.
  void resize(size_t n) {
    if (n > capacity()) grow(n);
    if (n > size_) std::fill(data() + size_, data() + n, Value{0});
    size_ = static_cast<uint32_t>(n);
  }

  template <class It>
  void append(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  /// std::vector-compatible tail insert. Only end() is supported; inserting
  /// mid-row would silently reorder columns, so it is checked.
  template <class It>
  void insert(const Value* pos, It first, It last) {
    DNA_CHECK_MSG(pos == end(), "SmallRow::insert supports only end()");
    append(first, last);
  }

  friend bool operator==(const SmallRow& a, const SmallRow& b) {
    return a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(), a.size_ * sizeof(Value)) == 0;
  }

  friend std::strong_ordering operator<=>(const SmallRow& a,
                                          const SmallRow& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(),
                                                  b.begin(), b.end());
  }

 private:
  void assign(const Value* src, size_t n) {
    if (n > capacity()) grow(n);
    std::copy(src, src + n, data());
    size_ = static_cast<uint32_t>(n);
  }

  void grow(size_t needed) {
    size_t new_cap = capacity() * 2;
    if (new_cap < needed) new_cap = needed;
    Value* buf = new Value[new_cap];
    std::copy(data(), data() + size_, buf);
    release();
    heap_ = buf;
    heap_cap_ = static_cast<uint32_t>(new_cap);
  }

  void release() {
    if (heap_cap_ != 0) {
      delete[] heap_;
      heap_cap_ = 0;
    }
  }

  uint32_t size_;
  uint32_t heap_cap_;  // 0 => inline storage in use
  union {
    Value inline_[kInlineCapacity];
    Value* heap_;
  };
};

using Row = SmallRow;

struct RowHash {
  size_t operator()(const Row& row) const noexcept {
    size_t h = hash_u64(row.size());
    for (Value v : row) h = hash_combine(h, hash_u64(static_cast<uint64_t>(v)));
    return h;
  }
};

/// Hash of `project(row, columns)` computed in place — identical to
/// RowHash{}(project(row, columns)) without materializing the key row.
inline size_t hash_projected(const Row& row, const std::vector<int>& columns) {
  size_t h = hash_u64(columns.size());
  for (int c : columns) {
    h = hash_combine(h, hash_u64(static_cast<uint64_t>(row[static_cast<size_t>(c)])));
  }
  return h;
}

/// True iff project(row, columns) == key, compared in place.
inline bool equals_projected(const Row& row, const std::vector<int>& columns,
                             const Row& key) {
  if (key.size() != columns.size()) return false;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (row[static_cast<size_t>(columns[i])] != key[i]) return false;
  }
  return true;
}

/// A signed change to a multiset: `mult > 0` inserts copies, `< 0` retracts.
struct Delta {
  Row row;
  int64_t mult = 0;

  bool operator==(const Delta&) const = default;
};

using DeltaVec = std::vector<Delta>;

/// A consolidated multiset: row -> multiplicity (never zero).
using Multiset = util::FlatMap<Row, int64_t, RowHash>;

/// Sums multiplicities per row in place and drops rows whose net
/// multiplicity is zero. Orders the result by row hash, so it is canonical:
/// any two delta batches describing the same change consolidate to the same
/// sequence (modulo 64-bit hash collisions). Allocation-free in steady
/// state: scratch is thread-local and rows with arity <= 4 never touch the
/// heap.
void consolidate_in_place(DeltaVec& deltas);

/// Copying wrapper around consolidate_in_place for callers that need to keep
/// the input batch.
DeltaVec consolidate(const DeltaVec& deltas);

/// Applies `deltas` to `state`, erasing entries that reach zero.
/// Returns the rows whose sign (absent/present) changed, useful for
/// set-semantics observers: +1 rows that appeared, -1 rows that vanished.
DeltaVec apply_to_multiset(Multiset& state, const DeltaVec& deltas);

/// Extracts selected columns of a row (used for join/group keys).
Row project(const Row& row, const std::vector<int>& columns);

}  // namespace dna::dataflow
