// Rows and signed deltas: the currency of the differential dataflow engine.
//
// A Row is a fixed-arity tuple of 64-bit values. Strings are interned to
// symbols by callers (see util/interner.h) so rows stay flat and hashing is
// cheap. A Delta pairs a row with a signed multiplicity: +k inserts, -k
// retracts. Collections are multisets represented as consolidated deltas.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace dna::dataflow {

using Value = int64_t;
using Row = std::vector<Value>;

struct RowHash {
  size_t operator()(const Row& row) const noexcept {
    size_t h = hash_u64(row.size());
    for (Value v : row) h = hash_combine(h, hash_u64(static_cast<uint64_t>(v)));
    return h;
  }
};

/// A signed change to a multiset: `mult > 0` inserts copies, `< 0` retracts.
struct Delta {
  Row row;
  int64_t mult = 0;

  bool operator==(const Delta&) const = default;
};

using DeltaVec = std::vector<Delta>;

/// A consolidated multiset: row -> multiplicity (never zero).
using Multiset = std::unordered_map<Row, int64_t, RowHash>;

/// Sums multiplicities per row and drops rows whose net multiplicity is zero.
DeltaVec consolidate(const DeltaVec& deltas);

/// Applies `deltas` to `state`, erasing entries that reach zero.
/// Returns the rows whose sign (absent/present) changed, useful for
/// set-semantics observers: +1 rows that appeared, -1 rows that vanished.
DeltaVec apply_to_multiset(Multiset& state, const DeltaVec& deltas);

/// Extracts selected columns of a row (used for join/group keys).
Row project(const Row& row, const std::vector<int>& columns);

}  // namespace dna::dataflow
