#include "dataflow/graph.h"

#include "util/error.h"

namespace dna::dataflow {

NodeId Graph::add_node(std::unique_ptr<Node> node,
                       const std::vector<NodeId>& sources) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  DNA_CHECK_MSG(static_cast<int>(sources.size()) == node->arity() ||
                    (sources.empty() && dynamic_cast<InputNode*>(node.get())),
                "wrong number of sources for node " + node->name());
  for (size_t port = 0; port < sources.size(); ++port) {
    const NodeId src = sources[port];
    DNA_CHECK_MSG(src < id, "dataflow graphs must be built bottom-up");
    successors_[src].push_back({id, static_cast<int>(port)});
  }
  nodes_.push_back(std::move(node));
  successors_.emplace_back();
  pending_.emplace_back(nodes_.back()->arity());
  return id;
}

NodeId Graph::add_input(std::string name) {
  return add_node(std::make_unique<InputNode>(std::move(name)), {});
}

NodeId Graph::add_map(std::string name, NodeId src, MapNode::Fn fn) {
  return add_node(std::make_unique<MapNode>(std::move(name), std::move(fn)),
                  {src});
}

NodeId Graph::add_flat_map(std::string name, NodeId src, FlatMapNode::Fn fn) {
  return add_node(
      std::make_unique<FlatMapNode>(std::move(name), std::move(fn)), {src});
}

NodeId Graph::add_filter(std::string name, NodeId src, FilterNode::Fn fn) {
  return add_node(std::make_unique<FilterNode>(std::move(name), std::move(fn)),
                  {src});
}

NodeId Graph::add_union(std::string name, const std::vector<NodeId>& srcs) {
  return add_node(std::make_unique<UnionNode>(std::move(name),
                                              static_cast<int>(srcs.size())),
                  srcs);
}

NodeId Graph::add_distinct(std::string name, NodeId src) {
  return add_node(std::make_unique<DistinctNode>(std::move(name)), {src});
}

NodeId Graph::add_join(std::string name, NodeId left,
                       std::vector<int> left_key, NodeId right,
                       std::vector<int> right_key, JoinNode::Combine combine) {
  return add_node(
      std::make_unique<JoinNode>(std::move(name), std::move(left_key),
                                 std::move(right_key), std::move(combine)),
      {left, right});
}

NodeId Graph::add_antijoin(std::string name, NodeId left,
                           std::vector<int> left_key, NodeId right,
                           std::vector<int> right_key) {
  return add_node(
      std::make_unique<AntiJoinNode>(std::move(name), std::move(left_key),
                                     std::move(right_key)),
      {left, right});
}

NodeId Graph::add_reduce(std::string name, NodeId src, std::vector<int> key,
                         ReduceNode::Aggregate agg) {
  return add_node(std::make_unique<ReduceNode>(std::move(name), std::move(key),
                                               std::move(agg)),
                  {src});
}

NodeId Graph::add_output(std::string name, NodeId src) {
  return add_node(std::make_unique<OutputNode>(std::move(name)), {src});
}

void Graph::push(NodeId input, DeltaVec deltas) {
  DNA_CHECK(input < nodes_.size());
  DNA_CHECK_MSG(dynamic_cast<InputNode*>(nodes_[input].get()) != nullptr,
                "push() target must be an input node");
  DeltaVec& queue = pending_[input][0];
  queue.insert(queue.end(), deltas.begin(), deltas.end());
}

void Graph::step() {
  // Output nodes record one epoch's deltas at a time.
  clear_output_deltas();
  // Creation order is a topological order, so one forward sweep per epoch
  // delivers every delta exactly once.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    Node& node = *nodes_[id];
    for (int port = 0; port < node.arity(); ++port) {
      DeltaVec batch = consolidate(pending_[id][static_cast<size_t>(port)]);
      pending_[id][static_cast<size_t>(port)].clear();
      if (batch.empty()) continue;
      node.on_input(port, batch);
    }
    DeltaVec out = node.take_output();
    if (out.empty()) continue;
    for (const EdgeTarget& target : successors_[id]) {
      DeltaVec& queue = pending_[target.node][static_cast<size_t>(target.port)];
      queue.insert(queue.end(), out.begin(), out.end());
    }
  }
}

const OutputNode& Graph::output(NodeId id) const {
  DNA_CHECK(id < nodes_.size());
  const auto* out = dynamic_cast<const OutputNode*>(nodes_[id].get());
  DNA_CHECK_MSG(out != nullptr, "node is not an output node");
  return *out;
}

void Graph::clear_output_deltas() {
  for (auto& node : nodes_) {
    if (auto* out = dynamic_cast<OutputNode*>(node.get())) {
      out->clear_last_deltas();
    }
  }
}

}  // namespace dna::dataflow
