#include "dataflow/graph.h"

#include "util/error.h"

namespace dna::dataflow {

NodeId Graph::add_node(std::unique_ptr<Node> node,
                       const std::vector<NodeId>& sources) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  DNA_CHECK_MSG(static_cast<int>(sources.size()) == node->arity() ||
                    (sources.empty() && dynamic_cast<InputNode*>(node.get())),
                "wrong number of sources for node " + node->name());
  for (size_t port = 0; port < sources.size(); ++port) {
    const NodeId src = sources[port];
    DNA_CHECK_MSG(src < id, "dataflow graphs must be built bottom-up");
    successors_[src].push_back({id, static_cast<int>(port)});
  }
  if (dynamic_cast<OutputNode*>(node.get()) != nullptr) {
    output_ids_.push_back(id);
  }
  nodes_.push_back(std::move(node));
  successors_.emplace_back();
  pending_.emplace_back(nodes_.back()->arity());
  return id;
}

NodeId Graph::add_input(std::string name) {
  return add_node(std::make_unique<InputNode>(std::move(name)), {});
}

NodeId Graph::add_map(std::string name, NodeId src, MapNode::Fn fn) {
  return add_node(std::make_unique<MapNode>(std::move(name), std::move(fn)),
                  {src});
}

NodeId Graph::add_flat_map(std::string name, NodeId src, FlatMapNode::Fn fn) {
  return add_node(
      std::make_unique<FlatMapNode>(std::move(name), std::move(fn)), {src});
}

NodeId Graph::add_filter(std::string name, NodeId src, FilterNode::Fn fn) {
  return add_node(std::make_unique<FilterNode>(std::move(name), std::move(fn)),
                  {src});
}

NodeId Graph::add_union(std::string name, const std::vector<NodeId>& srcs) {
  return add_node(std::make_unique<UnionNode>(std::move(name),
                                              static_cast<int>(srcs.size())),
                  srcs);
}

NodeId Graph::add_distinct(std::string name, NodeId src) {
  return add_node(std::make_unique<DistinctNode>(std::move(name)), {src});
}

NodeId Graph::add_join(std::string name, NodeId left,
                       std::vector<int> left_key, NodeId right,
                       std::vector<int> right_key, JoinNode::Combine combine) {
  return add_node(
      std::make_unique<JoinNode>(std::move(name), std::move(left_key),
                                 std::move(right_key), std::move(combine)),
      {left, right});
}

NodeId Graph::add_antijoin(std::string name, NodeId left,
                           std::vector<int> left_key, NodeId right,
                           std::vector<int> right_key) {
  return add_node(
      std::make_unique<AntiJoinNode>(std::move(name), std::move(left_key),
                                     std::move(right_key)),
      {left, right});
}

NodeId Graph::add_reduce(std::string name, NodeId src, std::vector<int> key,
                         ReduceNode::Aggregate agg) {
  return add_node(std::make_unique<ReduceNode>(std::move(name), std::move(key),
                                               std::move(agg)),
                  {src});
}

NodeId Graph::add_output(std::string name, NodeId src) {
  return add_node(std::make_unique<OutputNode>(std::move(name)), {src});
}

void Graph::push(NodeId input, const DeltaVec& deltas) {
  DNA_CHECK(input < nodes_.size());
  DNA_CHECK_MSG(dynamic_cast<InputNode*>(nodes_[input].get()) != nullptr,
                "push() target must be an input node");
  DeltaVec& queue = pending_[input][0];
  queue.insert(queue.end(), deltas.begin(), deltas.end());
}

void Graph::step() {
  // Output nodes record one epoch's deltas at a time.
  clear_output_deltas();
  // Creation order is a topological order, so one forward sweep per epoch
  // delivers every delta exactly once.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    Node& node = *nodes_[id];
    for (int port = 0; port < node.arity(); ++port) {
      DeltaVec& batch = pending_[id][static_cast<size_t>(port)];
      // Consolidate the queue in place and hand it to the node directly —
      // no per-epoch copy, and the queue keeps its capacity once cleared.
      consolidate_in_place(batch);
      if (!batch.empty()) node.on_input(port, batch);
      batch.clear();
    }
    DeltaVec& out = node.take_output();
    if (out.empty()) continue;
    const std::vector<EdgeTarget>& targets = successors_[id];
    if (targets.size() == 1) {
      // Sole successor: swap buffers instead of copying. The node's output
      // vector inherits the (cleared) queue's capacity for the next epoch.
      DeltaVec& queue =
          pending_[targets[0].node][static_cast<size_t>(targets[0].port)];
      if (queue.empty()) {
        std::swap(queue, out);
      } else {
        queue.insert(queue.end(), std::make_move_iterator(out.begin()),
                     std::make_move_iterator(out.end()));
      }
    } else {
      // Copy to all but the last target, move into the last: one deep copy
      // fewer per fan-out per epoch.
      for (size_t t = 0; t + 1 < targets.size(); ++t) {
        DeltaVec& queue =
            pending_[targets[t].node][static_cast<size_t>(targets[t].port)];
        queue.insert(queue.end(), out.begin(), out.end());
      }
      if (!targets.empty()) {
        const EdgeTarget& last = targets.back();
        DeltaVec& queue =
            pending_[last.node][static_cast<size_t>(last.port)];
        if (queue.empty()) {
          std::swap(queue, out);
        } else {
          queue.insert(queue.end(), std::make_move_iterator(out.begin()),
                       std::make_move_iterator(out.end()));
        }
      }
    }
    node.clear_output();
  }
}

const OutputNode& Graph::output(NodeId id) const {
  DNA_CHECK(id < nodes_.size());
  const auto* out = dynamic_cast<const OutputNode*>(nodes_[id].get());
  DNA_CHECK_MSG(out != nullptr, "node is not an output node");
  return *out;
}

void Graph::clear_output_deltas() {
  for (NodeId id : output_ids_) {
    static_cast<OutputNode*>(nodes_[id].get())->clear_last_deltas();
  }
}

size_t Graph::state_size(NodeId id) const {
  DNA_CHECK(id < nodes_.size());
  return nodes_[id]->state_size();
}

}  // namespace dna::dataflow
