// The dataflow graph: wires operators into a DAG and drives epochs.
//
// Usage:
//   Graph g;
//   NodeId edges = g.add_input("edges");
//   NodeId fwd   = g.add_map("fwd", edges, swap_columns);
//   NodeId out   = g.add_output("out", fwd);
//   g.push(edges, {{{1, 2}, +1}});
//   g.step();
//   g.output(out).state();        // consolidated collection
//   g.output(out).last_deltas();  // what changed this epoch
//
// Nodes may only consume earlier-created nodes, which makes creation order a
// topological order; step() exploits that to run each node exactly once per
// epoch. Multi-port nodes receive their ports in ascending order, which the
// join/anti-join operators rely on for the dL><R_old + L_new><dR identity.
#pragma once

#include <memory>
#include <vector>

#include "dataflow/ops.h"

namespace dna::dataflow {

class Graph {
 public:
  NodeId add_input(std::string name);
  NodeId add_map(std::string name, NodeId src, MapNode::Fn fn);
  NodeId add_flat_map(std::string name, NodeId src, FlatMapNode::Fn fn);
  NodeId add_filter(std::string name, NodeId src, FilterNode::Fn fn);
  NodeId add_union(std::string name, const std::vector<NodeId>& srcs);
  NodeId add_distinct(std::string name, NodeId src);
  NodeId add_join(std::string name, NodeId left, std::vector<int> left_key,
                  NodeId right, std::vector<int> right_key,
                  JoinNode::Combine combine);
  NodeId add_antijoin(std::string name, NodeId left, std::vector<int> left_key,
                      NodeId right, std::vector<int> right_key);
  NodeId add_reduce(std::string name, NodeId src, std::vector<int> key,
                    ReduceNode::Aggregate agg);
  NodeId add_output(std::string name, NodeId src);

  /// Queues external deltas for an input node; applied by the next step().
  void push(NodeId input, const DeltaVec& deltas);

  /// Runs one epoch: drains queued input and propagates through the DAG.
  /// Every buffer touched (pending queues, node output vectors) is recycled
  /// across epochs, so steady-state epochs perform no heap allocation for
  /// inline-arity rows.
  void step();

  const OutputNode& output(NodeId id) const;

  /// Clears every output node's last-epoch delta record.
  void clear_output_deltas();

  size_t node_count() const { return nodes_.size(); }

  /// Resident state rows of one node (see Node::state_size).
  size_t state_size(NodeId id) const;

 private:
  struct EdgeTarget {
    NodeId node;
    int port;
  };

  NodeId add_node(std::unique_ptr<Node> node,
                  const std::vector<NodeId>& sources);

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::vector<EdgeTarget>> successors_;  // by source node
  std::vector<NodeId> output_ids_;  // cached: nodes that are OutputNodes
  // Pending deltas per node per port, filled by push() and by propagation.
  // Queues are cleared, never destroyed, so capacity persists across epochs.
  std::vector<std::vector<DeltaVec>> pending_;
};

}  // namespace dna::dataflow
