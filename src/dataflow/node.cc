#include "dataflow/node.h"

// Node is header-only apart from this anchor for its vtable.
namespace dna::dataflow {}
