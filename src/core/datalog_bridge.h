// Bridge between the data-plane verifier and the datalog engine.
//
// Exports per-EC forwarding behaviour as EDB facts and computes reachability
// with recursive datalog rules; sync() pushes only fact deltas, so the
// datalog engine's incremental maintenance (counting/DRed) does the heavy
// lifting. Used as an independent cross-check of the specialized verifier
// and as the substrate of experiment F6.
//
// Scope: the bridge models FIB-level forwarding (no interface ACL
// filtering); equality with the verifier is asserted on ACL-free snapshots.
#pragma once

#include <memory>

#include "datalog/engine.h"
#include "dataplane/verifier.h"

namespace dna::core {

class DatalogBridge {
 public:
  explicit DatalogBridge(datalog::DatalogEngine::Strategy strategy =
                             datalog::DatalogEngine::Strategy::kIncremental);

  /// Replaces the EDB with the verifier's current state; pushes only the
  /// delta against what the engine already holds and flushes.
  void sync(const dp::Verifier& verifier);

  /// Compares datalog `freach` with the verifier's delivered sets.
  /// Returns the number of mismatching (ec, src, dst) triples.
  size_t mismatches(const dp::Verifier& verifier) const;

  datalog::DatalogEngine& engine() { return *engine_; }
  const datalog::DatalogEngine& engine() const { return *engine_; }

  /// The program text the bridge runs (exposed for documentation/tests).
  static const char* program_text();

 private:
  std::unique_ptr<datalog::DatalogEngine> engine_;
  int fedge_ = -1;
  int deliver_ = -1;
  int freach_ = -1;
};

}  // namespace dna::core
