#include "core/paths.h"

#include <algorithm>

#include "dataplane/acl_eval.h"

namespace dna::core {

std::string ForwardingPath::str(const topo::Topology& topology) const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i) out += " -> ";
    out += topology.node_name(nodes[i]);
  }
  switch (outcome) {
    case Outcome::kDelivered:
      out += " [delivered]";
      break;
    case Outcome::kDropped:
      out += " [dropped]";
      break;
    case Outcome::kLooped:
      out += " [loop]";
      break;
    case Outcome::kTruncated:
      out += " [...]";
      break;
  }
  return out;
}

namespace {

struct Enumerator {
  const dp::Verifier& verifier;
  const topo::Snapshot& snapshot;
  const dp::EcGraph& graph;
  dp::Probe probe;
  size_t max_paths;
  std::vector<ForwardingPath> out;
  std::vector<topo::NodeId> current;
  std::vector<bool> on_path;

  void finish(ForwardingPath::Outcome outcome) {
    if (out.size() >= max_paths) return;
    out.push_back({current, outcome});
  }

  void walk(topo::NodeId node) {
    if (out.size() >= max_paths) return;
    if (on_path[node]) {
      finish(ForwardingPath::Outcome::kLooped);
      return;
    }
    current.push_back(node);
    on_path[node] = true;

    const dp::NodeVerdict& verdict = graph.verdicts[node];
    switch (verdict.kind) {
      case dp::NodeVerdict::Kind::kLocal:
        finish(ForwardingPath::Outcome::kDelivered);
        break;
      case dp::NodeVerdict::Kind::kDrop:
        finish(ForwardingPath::Outcome::kDropped);
        break;
      case dp::NodeVerdict::Kind::kForward: {
        bool advanced = false;
        for (const cp::Hop& hop : verdict.hops) {
          const topo::Link& link = snapshot.topology.link(hop.link);
          if (!link.up) continue;
          const auto& cfg_u = snapshot.configs[node];
          const auto& cfg_v = snapshot.configs[hop.next];
          const auto* out_if = cfg_u.find_interface(link.if_of(node));
          const auto* in_if = cfg_v.find_interface(link.if_of(hop.next));
          if (!out_if || !in_if || !out_if->enabled || !in_if->enabled) {
            continue;
          }
          if (!dp::acl_permits(cfg_u, out_if->acl_out, probe)) continue;
          if (!dp::acl_permits(cfg_v, in_if->acl_in, probe)) continue;
          advanced = true;
          walk(hop.next);
        }
        if (!advanced) finish(ForwardingPath::Outcome::kDropped);
        break;
      }
    }

    on_path[node] = false;
    current.pop_back();
  }
};

}  // namespace

std::vector<ForwardingPath> forwarding_paths(const dp::Verifier& verifier,
                                             const topo::Snapshot& snapshot,
                                             topo::NodeId src, Ipv4Addr dst,
                                             size_t max_paths) {
  // The atom containing dst fixes every node's verdict.
  const dp::EcId ec = verifier.ec_index().covering(Ipv4Prefix(dst, 32))[0];
  Enumerator enumerator{
      verifier,
      snapshot,
      verifier.graph(ec),
      {dp::probe_source_address(snapshot.configs[src]), dst},
      max_paths,
      {},
      {},
      std::vector<bool>(snapshot.topology.num_nodes(), false)};
  enumerator.walk(src);
  std::sort(enumerator.out.begin(), enumerator.out.end());
  return std::move(enumerator.out);
}

PathDiff diff_paths(const std::vector<ForwardingPath>& before,
                    const std::vector<ForwardingPath>& after) {
  PathDiff diff;
  std::set_difference(before.begin(), before.end(), after.begin(), after.end(),
                      std::back_inserter(diff.removed));
  std::set_difference(after.begin(), after.end(), before.begin(), before.end(),
                      std::back_inserter(diff.added));
  return diff;
}

}  // namespace dna::core
