// Operator intent: named invariants evaluated against a verified data plane.
//
// Invariants reference nodes by name so they survive snapshot replacement.
// The DNA engine evaluates the registered set before and after every change
// and reports the flips — "this change broke X" / "this change fixed Y".
#pragma once

#include <string>
#include <vector>

#include "dataplane/properties.h"
#include "topo/snapshot.h"

namespace dna::core {

struct Invariant {
  enum class Kind {
    kReachable,      // src reaches dst for all atoms of `traffic`
    kIsolated,       // src never reaches dst within `traffic`
    kLoopFree,       // no loops anywhere within `traffic`
    kBlackholeFree,  // src hits no blackhole within `traffic`
    kWaypoint,       // src->dst traffic always crosses `waypoint`
  };

  Kind kind = Kind::kReachable;
  std::string src;
  std::string dst;
  std::string waypoint;
  Ipv4Prefix traffic;

  std::string describe() const;
};

/// Evaluates one invariant; unknown node names make it fail (holds=false).
bool eval_invariant(const Invariant& invariant,
                    const topo::Snapshot& snapshot,
                    const dp::Verifier& verifier);

}  // namespace dna::core
