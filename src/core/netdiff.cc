#include "core/netdiff.h"

#include <algorithm>

namespace dna::core {

namespace {

struct Interval {
  uint32_t lo, hi;
};

/// Subtracts the union of `b` from the union of `a`; both sorted disjoint.
std::vector<Interval> subtract(const std::vector<Interval>& a,
                               const std::vector<Interval>& b) {
  std::vector<Interval> out;
  size_t j = 0;
  for (const Interval& iv : a) {
    uint64_t lo = iv.lo;
    while (j < b.size() && b[j].hi < lo) ++j;
    size_t k = j;
    while (lo <= iv.hi) {
      if (k >= b.size() || b[k].lo > iv.hi) {
        out.push_back({static_cast<uint32_t>(lo), iv.hi});
        break;
      }
      if (b[k].lo > lo) {
        out.push_back({static_cast<uint32_t>(lo), b[k].lo - 1});
      }
      lo = static_cast<uint64_t>(b[k].hi) + 1;
      ++k;
    }
  }
  return out;
}

}  // namespace

std::vector<dp::ReachFact> facts_minus(const std::vector<dp::ReachFact>& a,
                                       const std::vector<dp::ReachFact>& b) {
  std::vector<dp::ReachFact> out;
  size_t i = 0, j = 0;
  while (i < a.size()) {
    const auto key_src = a[i].src;
    const auto key_dst = a[i].dst;
    std::vector<Interval> ai, bi;
    while (i < a.size() && a[i].src == key_src && a[i].dst == key_dst) {
      ai.push_back({a[i].lo, a[i].hi});
      ++i;
    }
    while (j < b.size() && (b[j].src < key_src ||
                            (b[j].src == key_src && b[j].dst < key_dst))) {
      ++j;
    }
    size_t k = j;
    while (k < b.size() && b[k].src == key_src && b[k].dst == key_dst) {
      bi.push_back({b[k].lo, b[k].hi});
      ++k;
    }
    for (const Interval& iv : subtract(ai, bi)) {
      out.push_back({key_src, key_dst, iv.lo, iv.hi});
    }
  }
  return out;
}

std::vector<dp::FlagFact> facts_minus(const std::vector<dp::FlagFact>& a,
                                      const std::vector<dp::FlagFact>& b) {
  std::vector<dp::FlagFact> out;
  size_t i = 0, j = 0;
  while (i < a.size()) {
    const auto key_src = a[i].src;
    std::vector<Interval> ai, bi;
    while (i < a.size() && a[i].src == key_src) {
      ai.push_back({a[i].lo, a[i].hi});
      ++i;
    }
    while (j < b.size() && b[j].src < key_src) ++j;
    size_t k = j;
    while (k < b.size() && b[k].src == key_src) {
      bi.push_back({b[k].lo, b[k].hi});
      ++k;
    }
    for (const Interval& iv : subtract(ai, bi)) {
      out.push_back({key_src, iv.lo, iv.hi});
    }
  }
  return out;
}

}  // namespace dna::core
