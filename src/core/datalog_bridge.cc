#include "core/datalog_bridge.h"

#include <set>

namespace dna::core {

const char* DatalogBridge::program_text() {
  return R"(
    .decl fedge(3) input    // (ec, from, to): forwarding hop
    .decl deliver(2) input  // (ec, node): local delivery
    .decl freach(3)         // (ec, src, dst): src's traffic delivered at dst
    freach(E, D, D) :- deliver(E, D).
    freach(E, U, D) :- fedge(E, U, M), freach(E, M, D).
  )";
}

DatalogBridge::DatalogBridge(datalog::DatalogEngine::Strategy strategy) {
  engine_ = std::make_unique<datalog::DatalogEngine>(program_text(), strategy);
  fedge_ = engine_->relation_id("fedge");
  deliver_ = engine_->relation_id("deliver");
  freach_ = engine_->relation_id("freach");
}

void DatalogBridge::sync(const dp::Verifier& verifier) {
  // Desired EDB state from the verifier's per-EC graphs.
  std::set<datalog::Tuple> want_edges, want_deliver;
  for (dp::EcId ec = 0; ec < verifier.num_ecs(); ++ec) {
    const dp::EcGraph& graph = verifier.graph(ec);
    for (topo::NodeId node = 0; node < graph.verdicts.size(); ++node) {
      const dp::NodeVerdict& verdict = graph.verdicts[node];
      if (verdict.kind == dp::NodeVerdict::Kind::kLocal) {
        want_deliver.insert(
            {static_cast<int64_t>(ec), static_cast<int64_t>(node)});
      } else if (verdict.kind == dp::NodeVerdict::Kind::kForward) {
        for (const cp::Hop& hop : verdict.hops) {
          want_edges.insert({static_cast<int64_t>(ec),
                             static_cast<int64_t>(node),
                             static_cast<int64_t>(hop.next)});
        }
      }
    }
  }

  auto push_delta = [&](int rel, const std::set<datalog::Tuple>& want) {
    for (const datalog::Tuple& row : engine_->rows(rel)) {
      if (!want.count(row)) engine_->remove(rel, row);
    }
    for (const datalog::Tuple& row : want) {
      if (!engine_->contains(rel, row)) engine_->insert(rel, row);
    }
  };
  push_delta(fedge_, want_edges);
  push_delta(deliver_, want_deliver);
  engine_->flush();
}

size_t DatalogBridge::mismatches(const dp::Verifier& verifier) const {
  std::set<datalog::Tuple> datalog_facts;
  for (const datalog::Tuple& row : engine_->rows(freach_)) {
    datalog_facts.insert(row);
  }
  size_t bad = 0;
  std::set<datalog::Tuple> verifier_facts;
  for (dp::EcId ec = 0; ec < verifier.num_ecs(); ++ec) {
    const dp::EcReach& reach = verifier.reach(ec);
    for (topo::NodeId src = 0; src < reach.delivered.size(); ++src) {
      for (uint32_t dst : reach.delivered[src].to_indices()) {
        verifier_facts.insert({static_cast<int64_t>(ec),
                               static_cast<int64_t>(src),
                               static_cast<int64_t>(dst)});
      }
    }
  }
  for (const auto& fact : verifier_facts) {
    if (!datalog_facts.count(fact)) ++bad;
  }
  for (const auto& fact : datalog_facts) {
    if (!verifier_facts.count(fact)) ++bad;
  }
  return bad;
}

}  // namespace dna::core
