// Forwarding-path extraction and differential path analysis.
//
// Given a verified data plane, enumerates the concrete node paths a probe
// from `src` to a destination address takes (all ECMP branches, up to a
// limit), and diffs the path sets across a change — the "why did my flow
// move" view that complements the reach-level diff.
#pragma once

#include <string>
#include <vector>

#include "dataplane/verifier.h"

namespace dna::core {

struct ForwardingPath {
  std::vector<topo::NodeId> nodes;  // src first
  enum class Outcome { kDelivered, kDropped, kLooped, kTruncated } outcome =
      Outcome::kDelivered;

  auto operator<=>(const ForwardingPath&) const = default;

  std::string str(const topo::Topology& topology) const;
};

/// Enumerates forwarding paths for (src, dst address). DFS over the EC
/// graph with ACL filtering; each ECMP branch forks a path. Stops after
/// `max_paths` (remaining branches are not reported).
std::vector<ForwardingPath> forwarding_paths(const dp::Verifier& verifier,
                                             const topo::Snapshot& snapshot,
                                             topo::NodeId src, Ipv4Addr dst,
                                             size_t max_paths = 16);

struct PathDiff {
  std::vector<ForwardingPath> removed;  // taken before, not after
  std::vector<ForwardingPath> added;    // taken after, not before

  bool empty() const { return removed.empty() && added.empty(); }
};

/// Set-difference of two path enumerations.
PathDiff diff_paths(const std::vector<ForwardingPath>& before,
                    const std::vector<ForwardingPath>& after);

}  // namespace dna::core
