// Change plans: named, composable snapshot transformations.
//
// Examples and benches describe operator actions as plans; the engine only
// ever sees the resulting target snapshot, exactly as it would receive a
// candidate configuration push in production.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "topo/mutators.h"

namespace dna::core {

class ChangePlan {
 public:
  using Step = std::function<topo::Snapshot(topo::Snapshot)>;

  explicit ChangePlan(std::string description)
      : description_(std::move(description)) {}

  ChangePlan& add(Step step) {
    steps_.push_back(std::move(step));
    return *this;
  }

  /// Applies all steps in order.
  topo::Snapshot apply(topo::Snapshot base) const {
    for (const Step& step : steps_) base = step(std::move(base));
    return base;
  }

  const std::string& description() const { return description_; }
  size_t size() const { return steps_.size(); }

  // ---- Common operator actions -------------------------------------------
  static ChangePlan link_cost(uint32_t link, int cost);
  static ChangePlan link_failure(uint32_t link);
  static ChangePlan link_recovery(uint32_t link);
  static ChangePlan acl_block(const std::string& node, Ipv4Prefix dst);
  static ChangePlan bgp_local_pref(const std::string& node, Ipv4Addr neighbor,
                                   int local_pref);
  static ChangePlan announce(const std::string& node, Ipv4Prefix prefix);
  static ChangePlan withdraw(const std::string& node, Ipv4Prefix prefix);
  static ChangePlan static_route(const std::string& node, Ipv4Prefix prefix,
                                 Ipv4Addr next_hop);

 private:
  std::string description_;
  std::vector<Step> steps_;
};

}  // namespace dna::core
