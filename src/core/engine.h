// The DNA engine: differential network analysis between snapshots.
//
//   DnaEngine engine(base_snapshot);
//   engine.add_invariant({Invariant::Kind::kReachable, "r0", "r5", "",
//                         Ipv4Prefix::parse("172.31.1.0/24").value()});
//   NetworkDiff diff = engine.advance(proposed_snapshot, Mode::kDifferential);
//   std::cout << core::render(diff, engine.snapshot().topology);
//
// Two execution modes compute the same NetworkDiff (a property the test
// suite enforces):
//
//  * Mode::kMonolithic — the Batfish-style baseline: simulate the target
//    snapshot from scratch, verify its whole data plane, and subtract the
//    two results. Cost is ~2x full verification regardless of change size.
//
//  * Mode::kDifferential — the paper's contribution: diff the configs,
//    propagate deltas through incremental SPF / event-driven BGP /
//    EC-granular data-plane re-verification. Cost scales with the impact of
//    the change.
#pragma once

#include <memory>

#include "controlplane/engine.h"
#include "core/invariants.h"
#include "core/netdiff.h"

namespace dna::core {

enum class Mode { kMonolithic, kDifferential };

class DnaEngine {
 public:
  explicit DnaEngine(topo::Snapshot base);
  ~DnaEngine();

  DnaEngine(const DnaEngine&) = delete;
  DnaEngine& operator=(const DnaEngine&) = delete;

  /// Computes the semantic diff from the current snapshot to `target` and
  /// advances the engine to `target`.
  NetworkDiff advance(topo::Snapshot target, Mode mode);

  /// Computes the semantic diff to `target` without keeping it: advances to
  /// `target`, captures the forward diff, and advances back to the original
  /// snapshot. Afterwards the engine's semantic state is exactly what a
  /// fresh engine built from the original snapshot would hold — the
  /// what-if primitive the scenario runner and the query service share.
  /// If the forward advance throws, the engine may be left mid-change;
  /// callers must discard it (the runner rebuilds its worker clone).
  NetworkDiff preview(topo::Snapshot target, Mode mode);

  void add_invariant(Invariant invariant) {
    invariants_.push_back(std::move(invariant));
  }
  const std::vector<Invariant>& invariants() const { return invariants_; }

  const topo::Snapshot& snapshot() const { return cp_->snapshot(); }
  const cp::ControlPlaneEngine& control_plane() const { return *cp_; }
  const dp::Verifier& verifier() const { return *dp_; }

 private:
  NetworkDiff advance_monolithic(topo::Snapshot target);
  NetworkDiff advance_differential(topo::Snapshot target);
  std::vector<bool> eval_invariants() const;
  void record_flips(const std::vector<bool>& before, NetworkDiff& diff) const;

  std::unique_ptr<cp::ControlPlaneEngine> cp_;
  std::unique_ptr<dp::Verifier> dp_;
  std::vector<Invariant> invariants_;
};

}  // namespace dna::core
