#include "core/engine.h"

namespace dna::core {

DnaEngine::DnaEngine(topo::Snapshot base) {
  cp_ = std::make_unique<cp::ControlPlaneEngine>(std::move(base));
  dp_ = std::make_unique<dp::Verifier>(&cp_->snapshot(), &cp_->fibs());
}

DnaEngine::~DnaEngine() = default;

std::vector<bool> DnaEngine::eval_invariants() const {
  std::vector<bool> verdicts;
  verdicts.reserve(invariants_.size());
  for (const Invariant& invariant : invariants_) {
    verdicts.push_back(eval_invariant(invariant, cp_->snapshot(), *dp_));
  }
  return verdicts;
}

void DnaEngine::record_flips(const std::vector<bool>& before,
                             NetworkDiff& diff) const {
  std::vector<bool> after = eval_invariants();
  for (size_t i = 0; i < invariants_.size(); ++i) {
    if (before[i] != after[i]) {
      diff.invariant_flips.push_back(
          {invariants_[i].describe(), before[i], after[i]});
    }
  }
}

NetworkDiff DnaEngine::advance(topo::Snapshot target, Mode mode) {
  return mode == Mode::kMonolithic ? advance_monolithic(std::move(target))
                                   : advance_differential(std::move(target));
}

NetworkDiff DnaEngine::preview(topo::Snapshot target, Mode mode) {
  topo::Snapshot base = cp_->snapshot();
  NetworkDiff diff = advance(std::move(target), mode);
  advance(std::move(base), mode);
  return diff;
}

NetworkDiff DnaEngine::advance_monolithic(topo::Snapshot target) {
  Stopwatch total;
  NetworkDiff diff;
  diff.used_monolithic = true;
  std::vector<bool> before = eval_invariants();

  // Syntactic diff (cheap; reported for parity with differential mode).
  diff.config_changes =
      config::diff_configs(cp_->snapshot().configs, target.configs);
  if (target.topology.num_nodes() == cp_->snapshot().topology.num_nodes() &&
      target.topology.num_links() == cp_->snapshot().topology.num_links()) {
    diff.link_changes =
        topo::diff_link_states(cp_->snapshot().topology, target.topology);
  }

  // Simulate and verify the target from scratch.
  Stopwatch sw;
  auto next_cp = std::make_unique<cp::ControlPlaneEngine>(std::move(target));
  diff.stages.add("control-plane", sw.elapsed_seconds());
  sw.reset();
  auto next_dp =
      std::make_unique<dp::Verifier>(&next_cp->snapshot(), &next_cp->fibs());
  diff.stages.add("data-plane", sw.elapsed_seconds());

  // Subtract.
  sw.reset();
  diff.fib_delta = cp::diff_fibs(cp_->fibs(), next_cp->fibs());
  const auto reach_before = dp_->all_reach_facts();
  const auto reach_after = next_dp->all_reach_facts();
  diff.reach_delta.gained = facts_minus(reach_after, reach_before);
  diff.reach_delta.lost = facts_minus(reach_before, reach_after);
  const auto loops_before = dp_->all_loop_facts();
  const auto loops_after = next_dp->all_loop_facts();
  diff.reach_delta.loops_gained = facts_minus(loops_after, loops_before);
  diff.reach_delta.loops_lost = facts_minus(loops_before, loops_after);
  const auto bh_before = dp_->all_blackhole_facts();
  const auto bh_after = next_dp->all_blackhole_facts();
  diff.reach_delta.blackholes_gained = facts_minus(bh_after, bh_before);
  diff.reach_delta.blackholes_lost = facts_minus(bh_before, bh_after);
  diff.stages.add("subtract", sw.elapsed_seconds());

  diff.affected_ecs = next_dp->num_ecs();  // everything was re-verified
  diff.total_ecs = next_dp->num_ecs();

  cp_ = std::move(next_cp);
  dp_ = std::move(next_dp);
  record_flips(before, diff);
  diff.seconds_total = total.elapsed_seconds();
  return diff;
}

NetworkDiff DnaEngine::advance_differential(topo::Snapshot target) {
  Stopwatch total;
  NetworkDiff diff;
  std::vector<bool> before = eval_invariants();

  cp::AdvanceResult cp_result = cp_->advance(std::move(target));
  for (const auto& entry : cp_->timers().entries()) {
    diff.stages.add(entry.stage, entry.seconds);
  }
  diff.config_changes = std::move(cp_result.config_changes);
  diff.link_changes = std::move(cp_result.link_changes);

  if (cp_result.rebuilt) {
    // Structural change: the verifier's EC state is tied to the old node
    // set; rebuild it and fall back to a full-fact subtraction.
    Stopwatch sw;
    auto old_reach = dp_->all_reach_facts();
    auto old_loops = dp_->all_loop_facts();
    auto old_bh = dp_->all_blackhole_facts();
    dp_ = std::make_unique<dp::Verifier>(&cp_->snapshot(), &cp_->fibs());
    auto new_reach = dp_->all_reach_facts();
    diff.reach_delta.gained = facts_minus(new_reach, old_reach);
    diff.reach_delta.lost = facts_minus(old_reach, new_reach);
    auto new_loops = dp_->all_loop_facts();
    diff.reach_delta.loops_gained = facts_minus(new_loops, old_loops);
    diff.reach_delta.loops_lost = facts_minus(old_loops, new_loops);
    auto new_bh = dp_->all_blackhole_facts();
    diff.reach_delta.blackholes_gained = facts_minus(new_bh, old_bh);
    diff.reach_delta.blackholes_lost = facts_minus(old_bh, new_bh);
    diff.used_monolithic = true;
    diff.stages.add("data-plane", sw.elapsed_seconds());
    diff.affected_ecs = dp_->num_ecs();
  } else {
    diff.reach_delta = dp_->apply(&cp_->snapshot(), &cp_->fibs(),
                                  cp_result.fib_delta, diff.config_changes);
    for (const auto& entry : dp_->timers().entries()) {
      diff.stages.add(entry.stage, entry.seconds);
    }
    diff.affected_ecs = dp_->last_affected_ecs();
  }
  diff.fib_delta = std::move(cp_result.fib_delta);
  diff.total_ecs = dp_->num_ecs();

  record_flips(before, diff);
  diff.seconds_total = total.elapsed_seconds();
  return diff;
}

}  // namespace dna::core
