// NetworkDiff: the complete semantic difference between two snapshots —
// what DNA computes and reports.
#pragma once

#include <string>
#include <vector>

#include "config/diff.h"
#include "controlplane/route.h"
#include "dataplane/verifier.h"
#include "topo/topology.h"
#include "util/timer.h"

namespace dna::core {

struct InvariantFlip {
  std::string description;
  bool before_holds = false;
  bool after_holds = false;

  bool operator==(const InvariantFlip&) const = default;
};

struct NetworkDiff {
  // Syntactic layer.
  std::vector<config::ConfigChange> config_changes;
  std::vector<topo::LinkChange> link_changes;
  // Forwarding layer.
  cp::FibDelta fib_delta;
  // Behaviour layer.
  dp::ReachDelta reach_delta;
  // Intent layer.
  std::vector<InvariantFlip> invariant_flips;

  // Diagnostics (not part of semantic equality).
  double seconds_total = 0;
  StageTimers stages;
  size_t affected_ecs = 0;
  size_t total_ecs = 0;
  bool used_monolithic = false;

  /// True when the change had no effect on forwarding or reachability.
  bool semantically_empty() const {
    return fib_delta.empty() && reach_delta.empty();
  }
};

/// Interval-aware set difference: the (src, dst, address) points present in
/// `a` but not in `b`. Inputs must be canonical (sorted, coalesced); output
/// is canonical. Used by monolithic mode to diff two full fact sets.
std::vector<dp::ReachFact> facts_minus(const std::vector<dp::ReachFact>& a,
                                       const std::vector<dp::ReachFact>& b);
std::vector<dp::FlagFact> facts_minus(const std::vector<dp::FlagFact>& a,
                                      const std::vector<dp::FlagFact>& b);

}  // namespace dna::core
