#include "core/invariants.h"

namespace dna::core {

std::string Invariant::describe() const {
  switch (kind) {
    case Kind::kReachable:
      return src + " reaches " + dst + " for " + traffic.str();
    case Kind::kIsolated:
      return src + " isolated from " + dst + " for " + traffic.str();
    case Kind::kLoopFree:
      return "loop-free for " + traffic.str();
    case Kind::kBlackholeFree:
      return src + " blackhole-free for " + traffic.str();
    case Kind::kWaypoint:
      return src + "->" + dst + " via " + waypoint + " for " + traffic.str();
  }
  return "?";
}

bool eval_invariant(const Invariant& invariant,
                    const topo::Snapshot& snapshot,
                    const dp::Verifier& verifier) {
  const topo::Topology& topology = snapshot.topology;
  auto id_of = [&](const std::string& name) -> int {
    return topology.has_node(name)
               ? static_cast<int>(topology.node_id(name))
               : -1;
  };
  switch (invariant.kind) {
    case Invariant::Kind::kReachable: {
      int src = id_of(invariant.src), dst = id_of(invariant.dst);
      if (src < 0 || dst < 0) return false;
      return dp::all_reach(verifier, static_cast<topo::NodeId>(src),
                           static_cast<topo::NodeId>(dst), invariant.traffic);
    }
    case Invariant::Kind::kIsolated: {
      int src = id_of(invariant.src), dst = id_of(invariant.dst);
      if (src < 0 || dst < 0) return false;
      return dp::isolated(verifier, static_cast<topo::NodeId>(src),
                          static_cast<topo::NodeId>(dst), invariant.traffic);
    }
    case Invariant::Kind::kLoopFree:
      return dp::loop_free(verifier, invariant.traffic);
    case Invariant::Kind::kBlackholeFree: {
      int src = id_of(invariant.src);
      if (src < 0) return false;
      return dp::blackhole_free(verifier, static_cast<topo::NodeId>(src),
                                invariant.traffic);
    }
    case Invariant::Kind::kWaypoint: {
      int src = id_of(invariant.src), dst = id_of(invariant.dst);
      int way = id_of(invariant.waypoint);
      if (src < 0 || dst < 0 || way < 0) return false;
      return dp::waypoint_enforced(
          verifier, snapshot, static_cast<topo::NodeId>(src),
          static_cast<topo::NodeId>(dst), static_cast<topo::NodeId>(way),
          invariant.traffic);
    }
  }
  return false;
}

}  // namespace dna::core
