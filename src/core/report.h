// Human-readable rendering of a NetworkDiff.
#pragma once

#include <string>

#include "core/netdiff.h"

namespace dna::core {

/// Full report: config changes, FIB churn, reachability changes, invariant
/// flips and timing. `max_items` caps each list (0 = unlimited).
std::string render(const NetworkDiff& diff, const topo::Topology& topology,
                   size_t max_items = 20);

/// One-line summary ("3 fib changes, 12 reach changes, 1 invariant broken").
std::string summarize(const NetworkDiff& diff);

}  // namespace dna::core
