#include "core/change.h"

namespace dna::core {

ChangePlan ChangePlan::link_cost(uint32_t link, int cost) {
  ChangePlan plan("set link " + std::to_string(link) + " cost to " +
                  std::to_string(cost));
  plan.add([link, cost](topo::Snapshot snap) {
    return topo::with_link_cost(std::move(snap), link, cost);
  });
  return plan;
}

ChangePlan ChangePlan::link_failure(uint32_t link) {
  ChangePlan plan("fail link " + std::to_string(link));
  plan.add([link](topo::Snapshot snap) {
    return topo::with_link_state(std::move(snap), link, false);
  });
  return plan;
}

ChangePlan ChangePlan::link_recovery(uint32_t link) {
  ChangePlan plan("recover link " + std::to_string(link));
  plan.add([link](topo::Snapshot snap) {
    return topo::with_link_state(std::move(snap), link, true);
  });
  return plan;
}

ChangePlan ChangePlan::acl_block(const std::string& node, Ipv4Prefix dst) {
  ChangePlan plan("block " + dst.str() + " at " + node);
  plan.add([node, dst](topo::Snapshot snap) {
    return topo::with_acl_block(std::move(snap), node, dst);
  });
  return plan;
}

ChangePlan ChangePlan::bgp_local_pref(const std::string& node,
                                      Ipv4Addr neighbor, int local_pref) {
  ChangePlan plan("set local-pref " + std::to_string(local_pref) + " from " +
                  neighbor.str() + " at " + node);
  plan.add([node, neighbor, local_pref](topo::Snapshot snap) {
    return topo::with_bgp_local_pref(std::move(snap), node, neighbor,
                                     local_pref);
  });
  return plan;
}

ChangePlan ChangePlan::announce(const std::string& node, Ipv4Prefix prefix) {
  ChangePlan plan("announce " + prefix.str() + " at " + node);
  plan.add([node, prefix](topo::Snapshot snap) {
    return topo::with_bgp_announce(std::move(snap), node, prefix);
  });
  return plan;
}

ChangePlan ChangePlan::withdraw(const std::string& node, Ipv4Prefix prefix) {
  ChangePlan plan("withdraw " + prefix.str() + " at " + node);
  plan.add([node, prefix](topo::Snapshot snap) {
    return topo::with_bgp_withdraw(std::move(snap), node, prefix);
  });
  return plan;
}

ChangePlan ChangePlan::static_route(const std::string& node,
                                    Ipv4Prefix prefix, Ipv4Addr next_hop) {
  ChangePlan plan("static " + prefix.str() + " via " + next_hop.str() +
                  " at " + node);
  plan.add([node, prefix, next_hop](topo::Snapshot snap) {
    return topo::with_static_route(std::move(snap), node, prefix, next_hop);
  });
  return plan;
}

}  // namespace dna::core
