#include "core/report.h"

#include <sstream>

namespace dna::core {

namespace {

std::string range_str(uint32_t lo, uint32_t hi) {
  if (lo == hi) return Ipv4Addr(lo).str();
  return Ipv4Addr(lo).str() + "-" + Ipv4Addr(hi).str();
}

template <typename T>
void cap_note(std::ostringstream& out, const std::vector<T>& items,
              size_t max_items) {
  if (max_items > 0 && items.size() > max_items) {
    out << "    ... and " << (items.size() - max_items) << " more\n";
  }
}

size_t limit(size_t size, size_t max_items) {
  return max_items == 0 ? size : std::min(size, max_items);
}

}  // namespace

std::string summarize(const NetworkDiff& diff) {
  std::ostringstream out;
  out << diff.config_changes.size() << " config change(s), "
      << diff.link_changes.size() << " link change(s), "
      << diff.fib_delta.total_changes() << " fib change(s), "
      << diff.reach_delta.total_changes() << " reachability change(s), "
      << diff.invariant_flips.size() << " invariant flip(s)";
  return out.str();
}

std::string render(const NetworkDiff& diff, const topo::Topology& topology,
                   size_t max_items) {
  std::ostringstream out;
  out << "=== network diff ("
      << (diff.used_monolithic ? "monolithic" : "differential") << ", "
      << diff.seconds_total * 1e3 << " ms) ===\n";
  out << summarize(diff) << "\n";

  if (!diff.config_changes.empty()) {
    out << "  config changes:\n";
    for (size_t i = 0; i < limit(diff.config_changes.size(), max_items); ++i) {
      out << "    " << diff.config_changes[i].str() << "\n";
    }
    cap_note(out, diff.config_changes, max_items);
  }
  if (!diff.link_changes.empty()) {
    out << "  link changes:\n";
    for (size_t i = 0; i < limit(diff.link_changes.size(), max_items); ++i) {
      const auto& change = diff.link_changes[i];
      const topo::Link& link = topology.link(change.link);
      out << "    " << topology.node_name(link.a) << " <-> "
          << topology.node_name(link.b) << " now "
          << (change.now_up ? "up" : "down") << "\n";
    }
    cap_note(out, diff.link_changes, max_items);
  }
  if (!diff.fib_delta.empty()) {
    out << "  fib changes:\n";
    size_t shown = 0;
    for (const auto& [node, delta] : diff.fib_delta.by_node) {
      for (const auto& entry : delta.removed) {
        if (max_items && shown >= max_items) break;
        out << "    - " << topology.node_name(node) << ": "
            << entry.str(topology) << "\n";
        ++shown;
      }
      for (const auto& entry : delta.added) {
        if (max_items && shown >= max_items) break;
        out << "    + " << topology.node_name(node) << ": "
            << entry.str(topology) << "\n";
        ++shown;
      }
    }
    if (max_items && diff.fib_delta.total_changes() > shown) {
      out << "    ... and " << (diff.fib_delta.total_changes() - shown)
          << " more\n";
    }
  }
  auto render_reach = [&](const char* label,
                          const std::vector<dp::ReachFact>& facts) {
    if (facts.empty()) return;
    out << "  " << label << ":\n";
    for (size_t i = 0; i < limit(facts.size(), max_items); ++i) {
      const auto& fact = facts[i];
      out << "    " << topology.node_name(fact.src) << " -> "
          << topology.node_name(fact.dst) << " for "
          << range_str(fact.lo, fact.hi) << "\n";
    }
    cap_note(out, facts, max_items);
  };
  render_reach("reachability gained", diff.reach_delta.gained);
  render_reach("reachability lost", diff.reach_delta.lost);

  auto render_flags = [&](const char* label,
                          const std::vector<dp::FlagFact>& facts) {
    if (facts.empty()) return;
    out << "  " << label << ":\n";
    for (size_t i = 0; i < limit(facts.size(), max_items); ++i) {
      const auto& fact = facts[i];
      out << "    from " << topology.node_name(fact.src) << " for "
          << range_str(fact.lo, fact.hi) << "\n";
    }
    cap_note(out, facts, max_items);
  };
  render_flags("loops introduced", diff.reach_delta.loops_gained);
  render_flags("loops fixed", diff.reach_delta.loops_lost);
  render_flags("blackholes introduced", diff.reach_delta.blackholes_gained);
  render_flags("blackholes fixed", diff.reach_delta.blackholes_lost);

  if (!diff.invariant_flips.empty()) {
    out << "  invariant flips:\n";
    for (const auto& flip : diff.invariant_flips) {
      out << "    " << (flip.after_holds ? "FIXED " : "BROKEN") << ": "
          << flip.description << "\n";
    }
  }
  out << "  stages:";
  for (const auto& entry : diff.stages.entries()) {
    out << " " << entry.stage << "=" << entry.seconds * 1e3 << "ms";
  }
  out << "\n  affected ECs: " << diff.affected_ecs << " / " << diff.total_ecs
      << "\n";
  return out.str();
}

}  // namespace dna::core
