// Control-plane engine: orchestrates connected/static/OSPF/BGP route
// computation and assembles per-node FIBs.
//
// Construction performs a full (monolithic) build. advance() moves the
// engine to a target snapshot *differentially*: it diffs configs and link
// states, feeds the OSPF and BGP models their incremental updates, and
// rebuilds FIBs only for nodes whose routing inputs changed. Structural
// topology changes (node/link add/remove) fall back to a full rebuild.
#pragma once

#include "config/diff.h"
#include "controlplane/bgp.h"
#include "controlplane/ospf.h"
#include "controlplane/rib.h"
#include "util/timer.h"

namespace dna::cp {

struct AdvanceResult {
  std::vector<config::ConfigChange> config_changes;
  std::vector<topo::LinkChange> link_changes;
  FibDelta fib_delta;
  bool rebuilt = false;  // structural change forced a full rebuild
};

class ControlPlaneEngine {
 public:
  explicit ControlPlaneEngine(topo::Snapshot snapshot);

  const topo::Snapshot& snapshot() const { return snap_; }
  const std::vector<Fib>& fibs() const { return fibs_; }
  const OspfModel& ospf() const { return ospf_; }
  const BgpSim& bgp() const { return bgp_; }

  /// Moves to `target` incrementally and reports what changed.
  AdvanceResult advance(topo::Snapshot target);

  /// Stage timings ("ospf", "bgp", "fib", "config-diff") of the last
  /// advance() / construction.
  const StageTimers& timers() const { return timers_; }

  /// Monolithic helper: computes all FIBs for a snapshot from scratch.
  static std::vector<Fib> compute_fibs(const topo::Snapshot& snapshot);

 private:
  void full_build();
  Fib build_fib(topo::NodeId node) const;

  topo::Snapshot snap_;
  OspfModel ospf_;
  BgpSim bgp_{&ospf_};
  std::vector<Fib> fibs_;
  StageTimers timers_;
};

}  // namespace dna::cp
