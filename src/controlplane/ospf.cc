#include "controlplane/ospf.h"

#include <algorithm>

#include "util/error.h"

namespace dna::cp {

namespace {

constexpr int kRedistributeCost = 20;

bool runs_ospf(const config::NodeConfig& cfg,
               const config::InterfaceConfig& iface) {
  if (!cfg.ospf.enabled || !iface.enabled) return false;
  for (const Ipv4Prefix& range : cfg.ospf.networks) {
    if (range.contains(iface.subnet())) return true;
  }
  return false;
}

int clamp_cost(int cost) { return cost < 1 ? 1 : cost; }

}  // namespace

OspfModel::Inputs OspfModel::derive_inputs(const topo::Snapshot& snapshot) {
  Inputs in;
  const topo::Topology& topology = snapshot.topology;
  in.graph.resize(topology.num_nodes());

  // One eligibility pass collects the surviving links and per-node degrees,
  // then the adjacency vectors are sized exactly and filled — no regrowth.
  struct EligibleLink {
    uint32_t li;
    int cost_a;
    int cost_b;
  };
  std::vector<EligibleLink> eligible;
  eligible.reserve(topology.num_links());
  std::vector<uint32_t> degree(topology.num_nodes(), 0);
  for (uint32_t li = 0; li < topology.num_links(); ++li) {
    const topo::Link& link = topology.link(li);
    if (!link.up) continue;
    const auto& cfg_a = snapshot.configs[link.a];
    const auto& cfg_b = snapshot.configs[link.b];
    const auto* ia = cfg_a.find_interface(link.a_if);
    const auto* ib = cfg_b.find_interface(link.b_if);
    if (!ia || !ib) continue;
    if (!runs_ospf(cfg_a, *ia) || !runs_ospf(cfg_b, *ib)) continue;
    if (ia->ospf_passive || ib->ospf_passive) continue;
    eligible.push_back({li, clamp_cost(ia->ospf_cost),
                        clamp_cost(ib->ospf_cost)});
    ++degree[link.a];
    ++degree[link.b];
  }
  // Symmetric arcs: every eligible link adds one out- and one in-arc at both
  // endpoints, so one degree count serves both adjacency directions.
  in.graph.reserve_degrees(degree, degree);
  for (const EligibleLink& el : eligible) {
    const topo::Link& link = topology.link(el.li);
    in.graph.add_arc(link.a, link.b, el.cost_a, el.li);
    in.graph.add_arc(link.b, link.a, el.cost_b, el.li);
  }

  // Advertisers: (node, cost) per prefix, min cost per node, sorted by node.
  std::map<Ipv4Prefix, std::map<topo::NodeId, int>> adv;
  for (topo::NodeId node = 0; node < topology.num_nodes(); ++node) {
    const auto& cfg = snapshot.configs[node];
    for (const auto& iface : cfg.interfaces) {
      int cost = -1;
      if (runs_ospf(cfg, iface)) {
        cost = clamp_cost(iface.ospf_cost);
      } else if (cfg.ospf.enabled && cfg.ospf.redistribute_connected &&
                 iface.enabled) {
        cost = kRedistributeCost;
      }
      if (cost < 0) continue;
      auto [it, inserted] = adv[iface.subnet()].try_emplace(node, cost);
      if (!inserted) it->second = std::min(it->second, cost);
    }
    if (cfg.ospf.enabled && cfg.ospf.redistribute_static) {
      for (const auto& route : cfg.static_routes) {
        auto [it, inserted] =
            adv[route.prefix].try_emplace(node, kRedistributeCost);
        if (!inserted) it->second = std::min(it->second, kRedistributeCost);
      }
    }
  }
  for (auto& [prefix, by_node] : adv) {
    in.advertisers[prefix].assign(by_node.begin(), by_node.end());
  }
  return in;
}

void OspfModel::build(const topo::Snapshot& snapshot) {
  in_ = derive_inputs(snapshot);
  const size_t n = in_.graph.num_nodes();
  sssp_.clear();
  sssp_.reserve(n);
  for (topo::NodeId src = 0; src < n; ++src) {
    sssp_.push_back(
        std::make_unique<DynamicSssp>(&in_.graph, src));
  }
  routes_.assign(n, {});
  for (topo::NodeId src = 0; src < n; ++src) {
    for (const auto& [prefix, advertisers] : in_.advertisers) {
      (void)advertisers;
      compute_route(src, prefix);
    }
  }
}

bool OspfModel::compute_route(topo::NodeId src, const Ipv4Prefix& prefix) {
  auto& table = routes_[src];
  auto existing = table.find(prefix);

  const auto adv_it = in_.advertisers.find(prefix);
  OspfRoute next;
  bool have_route = false;
  if (adv_it != in_.advertisers.end()) {
    const auto& dist_src = sssp_[src]->dist();
    bool self_advertises = false;
    int best = kInfDist;
    for (const auto& [node, cost] : adv_it->second) {
      if (node == src) {
        self_advertises = true;
        break;
      }
      if (dist_src[node] >= kInfDist) continue;
      best = std::min(best, dist_src[node] + cost);
    }
    if (!self_advertises && best < kInfDist) {
      next.metric = best;
      // First hops: arcs (src -> m) that start a shortest path to any
      // minimizing advertiser.
      for (const auto& [node, cost] : adv_it->second) {
        if (dist_src[node] >= kInfDist ||
            dist_src[node] + cost != best) {
          continue;
        }
        for (const Arc& arc : in_.graph.out[src]) {
          const auto& dist_mid = sssp_[arc.to]->dist();
          if (dist_mid[node] < kInfDist &&
              arc.weight + dist_mid[node] == dist_src[node]) {
            next.hops.push_back({arc.to, arc.link});
          }
        }
      }
      std::sort(next.hops.begin(), next.hops.end());
      next.hops.erase(std::unique(next.hops.begin(), next.hops.end()),
                      next.hops.end());
      have_route = !next.hops.empty();
    }
  }

  if (!have_route) {
    if (existing == table.end()) return false;
    table.erase(existing);
    return true;
  }
  if (existing != table.end() && existing->second == next) return false;
  table[prefix] = std::move(next);
  return true;
}

std::set<topo::NodeId> OspfModel::update(const topo::Snapshot& snapshot) {
  Inputs next = derive_inputs(snapshot);
  DNA_CHECK_MSG(next.graph.num_nodes() == in_.graph.num_nodes(),
                "node count changed; rebuild required");
  const size_t n = in_.graph.num_nodes();

  // ---- Arc diff: key (from, to, link) -> weight -------------------------
  struct ArcEvent {
    topo::NodeId from, to;
    uint32_t link;
    int old_w, new_w;
  };
  std::vector<ArcEvent> events;
  for (topo::NodeId from = 0; from < n; ++from) {
    auto weight_of = [](const std::vector<Arc>& arcs, topo::NodeId to,
                        uint32_t link) {
      for (const Arc& arc : arcs) {
        if (arc.to == to && arc.link == link) return arc.weight;
      }
      return kInfDist;
    };
    for (const Arc& arc : in_.graph.out[from]) {
      int new_w = weight_of(next.graph.out[from], arc.to, arc.link);
      if (new_w != arc.weight) {
        events.push_back({from, arc.to, arc.link, arc.weight, new_w});
      }
    }
    for (const Arc& arc : next.graph.out[from]) {
      int old_w = weight_of(in_.graph.out[from], arc.to, arc.link);
      if (old_w >= kInfDist) {
        events.push_back({from, arc.to, arc.link, kInfDist, arc.weight});
      }
    }
  }

  // ---- Apply events: mutate the shared graph, update every source -------
  std::vector<std::set<topo::NodeId>> changed_dests(n);
  std::set<topo::NodeId> incident;  // sources with a changed outgoing arc
  auto mutate_arc = [&](const ArcEvent& ev) {
    auto apply = [&](std::vector<Arc>& arcs, topo::NodeId endpoint) {
      for (size_t i = 0; i < arcs.size(); ++i) {
        if (arcs[i].to == endpoint && arcs[i].link == ev.link) {
          if (ev.new_w >= kInfDist) {
            arcs[i] = arcs.back();
            arcs.pop_back();
          } else {
            arcs[i].weight = ev.new_w;
          }
          return;
        }
      }
      DNA_CHECK(ev.old_w >= kInfDist);  // insertion
      arcs.push_back({endpoint, ev.new_w, ev.link});
    };
    apply(in_.graph.out[ev.from], ev.to);
    // `in` lists store the *source* in Arc::to.
    apply(in_.graph.in[ev.to], ev.from);
  };

  for (const ArcEvent& ev : events) {
    mutate_arc(ev);
    incident.insert(ev.from);
    for (topo::NodeId src = 0; src < n; ++src) {
      for (topo::NodeId t :
           sssp_[src]->arc_updated(ev.from, ev.to, ev.old_w, ev.new_w)) {
        changed_dests[src].insert(t);
      }
    }
  }

  // ---- Advertiser diff ----------------------------------------------------
  std::set<Ipv4Prefix> changed_prefixes;
  for (const auto& [prefix, advertisers] : in_.advertisers) {
    auto it = next.advertisers.find(prefix);
    if (it == next.advertisers.end() || it->second != advertisers) {
      changed_prefixes.insert(prefix);
    }
  }
  for (const auto& [prefix, advertisers] : next.advertisers) {
    (void)advertisers;
    if (!in_.advertisers.count(prefix)) changed_prefixes.insert(prefix);
  }
  in_.advertisers = std::move(next.advertisers);

  // ---- Recompute affected routes -----------------------------------------
  std::set<topo::NodeId> dirty;
  for (topo::NodeId src = 0; src < n; ++src) {
    std::set<Ipv4Prefix> affected = changed_prefixes;
    if (incident.count(src)) {
      // First hops at src depend on its outgoing arc weights: recompute all.
      for (const auto& [prefix, advertisers] : in_.advertisers) {
        (void)advertisers;
        affected.insert(prefix);
      }
      // Also prefixes that currently have a route but lost all advertisers.
      for (const auto& [prefix, route] : routes_[src]) {
        (void)route;
        affected.insert(prefix);
      }
    } else {
      // Destinations whose distance changed from src or from any of src's
      // out-neighbors feed metric/first-hop computations.
      std::set<topo::NodeId> moved = changed_dests[src];
      for (const Arc& arc : in_.graph.out[src]) {
        moved.insert(changed_dests[arc.to].begin(),
                     changed_dests[arc.to].end());
      }
      if (!moved.empty()) {
        for (const auto& [prefix, advertisers] : in_.advertisers) {
          for (const auto& [node, cost] : advertisers) {
            (void)cost;
            if (moved.count(node)) {
              affected.insert(prefix);
              break;
            }
          }
        }
      }
    }
    for (const Ipv4Prefix& prefix : affected) {
      if (compute_route(src, prefix)) dirty.insert(src);
    }
  }
  return dirty;
}

}  // namespace dna::cp
