// Dynamic single-source shortest paths (incremental SPF).
//
// Maintains one source's distance vector across single-arc weight events
// using a delete–repair scheme (the shortest-path analogue of DRed):
//
//  * weight decrease / arc insert: standard Dijkstra relaxation from the
//    arc head — only improved nodes are touched;
//  * weight increase / arc removal: if the arc was tight, collect the
//    "orphaned" region whose every shortest path used it (processed in
//    increasing-distance order so supports are final when checked), then
//    repair the region with a boundary-seeded Dijkstra.
//
// All weights must be >= 1. The owning model mutates the shared graph first
// and then calls arc_updated() on every per-source instance.
//
// Experiment F5 compares this against re-running full Dijkstra per event.
#pragma once

#include <vector>

#include "controlplane/spf.h"

namespace dna::cp {

class DynamicSssp {
 public:
  /// Computes the initial distances. The graph must outlive this object.
  DynamicSssp(const WeightedDigraph* graph, topo::NodeId source);

  /// Re-runs full Dijkstra (used after wholesale graph replacement).
  void recompute();

  /// Notifies that the weight of one arc (from -> to) changed from `old_w`
  /// to `new_w` (kInfDist encodes absent). The graph must already reflect
  /// the new state. Returns the nodes whose distance changed, in no
  /// particular order.
  std::vector<topo::NodeId> arc_updated(topo::NodeId from, topo::NodeId to,
                                        int old_w, int new_w);

  const std::vector<int>& dist() const { return dist_; }
  int dist_to(topo::NodeId node) const { return dist_[node]; }

 private:
  std::vector<topo::NodeId> on_decrease(topo::NodeId to);
  std::vector<topo::NodeId> on_increase(topo::NodeId from, topo::NodeId to,
                                        int old_w);

  const WeightedDigraph* graph_;
  topo::NodeId source_;
  std::vector<int> dist_;
};

}  // namespace dna::cp
