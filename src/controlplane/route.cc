#include "controlplane/route.h"

#include <algorithm>

namespace dna::cp {

int admin_distance(Protocol protocol) {
  switch (protocol) {
    case Protocol::kConnected:
      return 0;
    case Protocol::kStatic:
      return 1;
    case Protocol::kEbgp:
      return 20;
    case Protocol::kOspf:
      return 110;
    case Protocol::kIbgp:
      return 200;
  }
  return 255;
}

const char* protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kConnected:
      return "connected";
    case Protocol::kStatic:
      return "static";
    case Protocol::kEbgp:
      return "ebgp";
    case Protocol::kOspf:
      return "ospf";
    case Protocol::kIbgp:
      return "ibgp";
  }
  return "?";
}

std::string FibEntry::str(const topo::Topology& topology) const {
  std::string out = prefix.str();
  out += " [";
  out += protocol_name(protocol);
  out += "]";
  if (action == Action::kLocal) {
    out += " local";
  } else {
    out += " ->";
    for (const Hop& hop : hops) {
      out += " ";
      out += topology.node_name(hop.next);
      out += "(link";
      out += std::to_string(hop.link);
      out += ")";
    }
  }
  return out;
}

bool FibDelta::empty() const {
  for (const auto& [node, delta] : by_node) {
    if (!delta.empty()) return false;
  }
  return true;
}

size_t FibDelta::total_changes() const {
  size_t n = 0;
  for (const auto& [node, delta] : by_node) {
    n += delta.added.size() + delta.removed.size();
  }
  return n;
}

NodeFibDelta diff_fib(const Fib& before, const Fib& after) {
  NodeFibDelta delta;
  // Both FIBs are sorted; a merge pass finds symmetric differences.
  size_t i = 0, j = 0;
  while (i < before.size() || j < after.size()) {
    if (i == before.size()) {
      delta.added.push_back(after[j++]);
    } else if (j == after.size()) {
      delta.removed.push_back(before[i++]);
    } else if (before[i] == after[j]) {
      ++i;
      ++j;
    } else if (before[i] < after[j]) {
      delta.removed.push_back(before[i++]);
    } else {
      delta.added.push_back(after[j++]);
    }
  }
  return delta;
}

FibDelta diff_fibs(const std::vector<Fib>& before,
                   const std::vector<Fib>& after) {
  FibDelta delta;
  const size_t n = std::max(before.size(), after.size());
  static const Fib kEmpty;
  for (size_t node = 0; node < n; ++node) {
    const Fib& b = node < before.size() ? before[node] : kEmpty;
    const Fib& a = node < after.size() ? after[node] : kEmpty;
    NodeFibDelta d = diff_fib(b, a);
    if (!d.empty()) {
      delta.by_node.emplace(static_cast<topo::NodeId>(node), std::move(d));
    }
  }
  return delta;
}

}  // namespace dna::cp
