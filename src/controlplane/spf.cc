#include "controlplane/spf.h"

#include <queue>

namespace dna::cp {

std::vector<int> dijkstra(const WeightedDigraph& graph, topo::NodeId source) {
  std::vector<int> dist(graph.num_nodes(), kInfDist);
  using Item = std::pair<int, topo::NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    auto [d, node] = heap.top();
    heap.pop();
    if (d != dist[node]) continue;  // stale entry
    for (const Arc& arc : graph.out[node]) {
      const int nd = d + arc.weight;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return dist;
}

}  // namespace dna::cp
