#include "controlplane/spf.h"

#include <queue>

namespace dna::cp {

std::vector<int> dijkstra(const WeightedDigraph& graph, topo::NodeId source) {
  std::vector<int> dist(graph.num_nodes(), kInfDist);
  using Item = std::pair<int, topo::NodeId>;  // (distance, node)
  // Pre-size the heap storage: every node enters at least once and decrease-
  // key is emulated by re-push, so num_nodes is the common high-water mark.
  std::vector<Item> heap_storage;
  heap_storage.reserve(graph.num_nodes() + 1);
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap(
      std::greater<>{}, std::move(heap_storage));
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    auto [d, node] = heap.top();
    heap.pop();
    if (d != dist[node]) continue;  // stale entry
    for (const Arc& arc : graph.out[node]) {
      const int nd = d + arc.weight;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return dist;
}

}  // namespace dna::cp
