// OSPF model: link-state routing over the snapshot's adjacency graph.
//
// Full mode runs Dijkstra per source. Incremental mode re-derives the
// (cheap) graph + advertiser inputs from the new snapshot, diffs them
// against the previous inputs, feeds arc-level events to the per-source
// DynamicSssp instances, and recomputes routes only for (source, prefix)
// pairs whose distances, first-hop inputs, or advertisers changed.
//
// Route-level semantics:
//  * an interface runs OSPF when its node has OSPF enabled and the
//    interface subnet is covered by one of the process's `network` ranges;
//  * adjacencies form over up links whose two endpoint interfaces both run
//    OSPF, are enabled and are not passive;
//  * every OSPF-running interface's subnet is advertised at the interface
//    cost; redistribute connected/static advertise at cost 20;
//  * the route metric to a prefix is min over advertisers d of
//    dist(s, d) + advertised cost; ECMP keeps all tight first hops;
//  * a node that advertises a prefix installs no OSPF route for it.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "controlplane/incremental_spf.h"
#include "controlplane/route.h"
#include "topo/snapshot.h"

namespace dna::cp {

struct OspfRoute {
  int metric = 0;
  std::vector<Hop> hops;  // sorted

  auto operator<=>(const OspfRoute&) const = default;
};

class OspfModel {
 public:
  /// Full computation from scratch.
  void build(const topo::Snapshot& snapshot);

  /// Incremental move to `snapshot`; returns nodes whose OSPF route table
  /// changed. Node additions/removals require a rebuild (handled by caller
  /// falling back to build()).
  std::set<topo::NodeId> update(const topo::Snapshot& snapshot);

  const std::map<Ipv4Prefix, OspfRoute>& routes(topo::NodeId node) const {
    return routes_.at(node);
  }

  /// Distances from `src` (for diagnostics and tests).
  const std::vector<int>& dist(topo::NodeId src) const {
    return sssp_.at(src)->dist();
  }

 private:
  /// (advertising node -> advertised cost), sorted by node id.
  using Advertisers = std::map<Ipv4Prefix, std::vector<std::pair<topo::NodeId, int>>>;

  struct Inputs {
    WeightedDigraph graph;
    Advertisers advertisers;
  };

  static Inputs derive_inputs(const topo::Snapshot& snapshot);

  /// Recomputes the route of (src, prefix) in place; returns true if it
  /// changed.
  bool compute_route(topo::NodeId src, const Ipv4Prefix& prefix);

  Inputs in_;
  std::vector<std::unique_ptr<DynamicSssp>> sssp_;  // by source node
  std::vector<std::map<Ipv4Prefix, OspfRoute>> routes_;  // by source node
};

}  // namespace dna::cp
