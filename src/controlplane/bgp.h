// BGP: event-driven path-vector simulation with policies.
//
// Sessions form between directly connected nodes whose configurations agree
// (both sides list the other's interface address with the correct remote
// AS, over an up link with both interfaces enabled). Each node keeps
// per-session Adj-RIB-In (raw, as received), a Loc-RIB of best routes, and
// remembers what it last advertised per session so that convergence work is
// proportional to actual route churn — which is exactly what makes the
// simulator *naturally differential*: a full build and an incremental
// update run the same worklist loop, seeded differently (experiment F7).
//
// Semantics (documented simplifications in DESIGN.md):
//  * decision process: locally-originated, then highest local-pref,
//    shortest AS path, lowest MED (always compared), eBGP over iBGP,
//    lowest originator router-id, lowest peer address, lowest link id;
//  * eBGP export prepends own AS and resets local-pref to 100; iBGP export
//    preserves attributes; routes learned from iBGP are not re-advertised
//    to iBGP peers (no route reflection);
//  * AS-path loop rejection on import;
//  * `network` statements originate unconditionally; redistribution pulls
//    connected subnets, static prefixes, and (when enabled) OSPF routes.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "controlplane/ospf.h"
#include "controlplane/policy.h"
#include "controlplane/route.h"
#include "topo/snapshot.h"
#include "config/diff.h"

namespace dna::cp {

class BgpSim {
 public:
  /// Best route selected at a node for a prefix.
  struct Best {
    BgpRoute route;
    bool local = false;  // locally originated
    bool ebgp = true;    // learned over eBGP (meaningful when !local)
    topo::NodeId via = topo::kNoNode;
    uint32_t link = 0;
    Ipv4Addr via_ip;

    bool operator==(const Best&) const = default;
  };

  /// `ospf` may be null when no node redistributes OSPF into BGP.
  explicit BgpSim(const OspfModel* ospf = nullptr) : ospf_(ospf) {}

  /// Full build: derive sessions and originations, converge from scratch.
  void build(const topo::Snapshot& snapshot);

  /// Incremental move to `snapshot`; `changes` identifies policy edits that
  /// require re-import/re-export. `ospf_dirty` lists nodes whose OSPF routes
  /// changed (feeds redistribution). Returns nodes whose Loc-RIB changed.
  std::set<topo::NodeId> update(const topo::Snapshot& snapshot,
                                const std::vector<config::ConfigChange>& changes,
                                const std::set<topo::NodeId>& ospf_dirty);

  const std::map<Ipv4Prefix, Best>& best(topo::NodeId node) const {
    return best_.at(node);
  }

  /// Number of (node, prefix) decision evaluations in the last build/update;
  /// the convergence-effort metric for experiment F7.
  size_t last_work_items() const { return work_items_; }

 private:
  struct Session {
    topo::NodeId a = topo::kNoNode;
    topo::NodeId b = topo::kNoNode;
    uint32_t link = 0;
    Ipv4Addr a_ip, b_ip;
    uint32_t a_as = 0, b_as = 0;

    bool ebgp() const { return a_as != b_as; }
    auto operator<=>(const Session&) const = default;
  };

  /// Directed session endpoint: (receiver/sender node, peer node, link).
  using SessKey = std::tuple<topo::NodeId, topo::NodeId, uint32_t>;
  using Worklist = std::set<std::pair<topo::NodeId, Ipv4Prefix>>;

  std::vector<Session> derive_sessions(const topo::Snapshot& snapshot) const;
  std::map<Ipv4Prefix, BgpRoute> derive_originations(
      const topo::Snapshot& snapshot, topo::NodeId node) const;

  void converge(const topo::Snapshot& snapshot, Worklist& work,
                std::set<topo::NodeId>& dirty);
  /// Recomputes the best route at (node, prefix); updates Loc-RIB and
  /// advertises changes. Returns true if the Loc-RIB entry changed.
  bool process(const topo::Snapshot& snapshot, topo::NodeId node,
               const Ipv4Prefix& prefix, Worklist& work);
  /// Re-sends (sender -> peer) advertisements for all known prefixes,
  /// enqueueing the peer where the advertisement changed.
  void resend_all(const topo::Snapshot& snapshot, const Session& session,
                  bool a_to_b, Worklist& work);
  /// Computes what `sender` advertises to the peer for `prefix`
  /// (nullopt = withdraw).
  std::optional<BgpRoute> advertisement(const topo::Snapshot& snapshot,
                                        const Session& session, bool a_to_b,
                                        const Ipv4Prefix& prefix) const;

  const Session* find_session(topo::NodeId node, topo::NodeId peer,
                              uint32_t link) const;

  const OspfModel* ospf_ = nullptr;
  std::vector<Session> sessions_;                      // sorted
  std::vector<std::vector<const Session*>> by_node_;   // sessions per node
  std::map<SessKey, std::map<Ipv4Prefix, BgpRoute>> rib_in_;  // receiver key
  std::map<SessKey, std::map<Ipv4Prefix, BgpRoute>> sent_;    // sender key
  std::vector<std::map<Ipv4Prefix, Best>> best_;
  std::vector<std::map<Ipv4Prefix, BgpRoute>> originations_;
  size_t work_items_ = 0;
};

/// The effective BGP router id (configured, else highest interface address).
Ipv4Addr effective_router_id(const config::NodeConfig& cfg);

}  // namespace dna::cp
