#include "controlplane/incremental_spf.h"

#include <queue>
#include <unordered_set>

#include "util/error.h"

namespace dna::cp {

namespace {
using Item = std::pair<int, topo::NodeId>;  // (distance, node)
using MinHeap = std::priority_queue<Item, std::vector<Item>, std::greater<>>;
}  // namespace

DynamicSssp::DynamicSssp(const WeightedDigraph* graph, topo::NodeId source)
    : graph_(graph), source_(source) {
  recompute();
}

void DynamicSssp::recompute() { dist_ = dijkstra(*graph_, source_); }

std::vector<topo::NodeId> DynamicSssp::arc_updated(topo::NodeId from,
                                                   topo::NodeId to, int old_w,
                                                   int new_w) {
  dist_.resize(graph_->num_nodes(), kInfDist);
  if (new_w < old_w) return on_decrease(to);
  if (new_w > old_w) return on_increase(from, to, old_w);
  return {};
}

std::vector<topo::NodeId> DynamicSssp::on_decrease(topo::NodeId to) {
  // The arc head may have improved; one pass of Dijkstra relaxation from the
  // improved frontier settles everything downstream.
  int best = kInfDist;
  for (const Arc& arc : graph_->in[to]) {
    if (dist_[arc.to] >= kInfDist) continue;
    best = std::min(best, dist_[arc.to] + arc.weight);
  }
  if (to == source_) best = 0;
  if (best >= dist_[to]) return {};  // not an improvement

  std::unordered_set<topo::NodeId> changed{to};
  MinHeap heap;
  dist_[to] = best;
  heap.push({best, to});
  while (!heap.empty()) {
    auto [d, node] = heap.top();
    heap.pop();
    if (d != dist_[node]) continue;
    for (const Arc& arc : graph_->out[node]) {
      const int nd = d + arc.weight;
      if (nd < dist_[arc.to]) {
        changed.insert(arc.to);
        dist_[arc.to] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return {changed.begin(), changed.end()};
}

std::vector<topo::NodeId> DynamicSssp::on_increase(topo::NodeId from,
                                                   topo::NodeId to,
                                                   int old_w) {
  if (dist_[from] >= kInfDist) return {};
  if (dist_[from] + old_w != dist_[to]) return {};  // arc was not tight
  if (to == source_) return {};                     // source is always 0

  // Collect the orphaned region: nodes whose every tight predecessor is
  // itself orphaned. Processing in increasing old-distance order makes the
  // support check final (weights >= 1 imply supports have smaller dist).
  std::unordered_set<topo::NodeId> orphaned;
  MinHeap candidates;
  candidates.push({dist_[to], to});
  std::unordered_set<topo::NodeId> enqueued{to};

  while (!candidates.empty()) {
    auto [d, node] = candidates.top();
    candidates.pop();
    if (node == source_) continue;
    bool supported = false;
    for (const Arc& arc : graph_->in[node]) {
      DNA_CHECK_MSG(arc.weight >= 1, "incremental SPF requires weights >= 1");
      const topo::NodeId pred = arc.to;  // `in` stores the source in `to`
      if (orphaned.count(pred) || dist_[pred] >= kInfDist) continue;
      if (dist_[pred] + arc.weight == dist_[node]) {
        supported = true;
        break;
      }
    }
    if (supported) continue;  // keeps its distance; boundary node
    orphaned.insert(node);
    for (const Arc& arc : graph_->out[node]) {
      if (enqueued.count(arc.to)) continue;
      if (dist_[node] + arc.weight == dist_[arc.to]) {  // tight successor
        enqueued.insert(arc.to);
        candidates.push({dist_[arc.to], arc.to});
      }
    }
  }
  if (orphaned.empty()) return {};

  // Repair: seed each orphan with its best boundary estimate, then settle.
  std::vector<std::pair<topo::NodeId, int>> old_dist;
  old_dist.reserve(orphaned.size());
  MinHeap heap;
  for (topo::NodeId node : orphaned) {
    old_dist.emplace_back(node, dist_[node]);
    int best = kInfDist;
    for (const Arc& arc : graph_->in[node]) {
      const topo::NodeId pred = arc.to;
      if (orphaned.count(pred) || dist_[pred] >= kInfDist) continue;
      best = std::min(best, dist_[pred] + arc.weight);
    }
    dist_[node] = best;
    if (best < kInfDist) heap.push({best, node});
  }
  while (!heap.empty()) {
    auto [d, node] = heap.top();
    heap.pop();
    if (d != dist_[node]) continue;
    for (const Arc& arc : graph_->out[node]) {
      if (!orphaned.count(arc.to)) continue;
      const int nd = d + arc.weight;
      if (nd < dist_[arc.to]) {
        dist_[arc.to] = nd;
        heap.push({nd, arc.to});
      }
    }
  }

  std::vector<topo::NodeId> changed;
  for (auto& [node, before] : old_dist) {
    if (dist_[node] != before) changed.push_back(node);
  }
  return changed;
}

}  // namespace dna::cp
