#include "controlplane/bgp.h"

#include <algorithm>

#include "util/error.h"

namespace dna::cp {

namespace {

/// Strict total order on candidates; true if `a` is preferred over `b`.
bool better(const BgpSim::Best& a, const BgpSim::Best& b) {
  if (a.local != b.local) return a.local;
  if (a.route.local_pref != b.route.local_pref) {
    return a.route.local_pref > b.route.local_pref;
  }
  if (a.route.as_path.size() != b.route.as_path.size()) {
    return a.route.as_path.size() < b.route.as_path.size();
  }
  if (a.route.med != b.route.med) return a.route.med < b.route.med;
  if (a.ebgp != b.ebgp) return a.ebgp;
  if (a.route.origin_router_id != b.route.origin_router_id) {
    return a.route.origin_router_id < b.route.origin_router_id;
  }
  if (a.via_ip != b.via_ip) return a.via_ip < b.via_ip;
  return a.link < b.link;
}

const config::BgpNeighborConfig* find_neighbor(const config::NodeConfig& cfg,
                                               Ipv4Addr peer_ip) {
  for (const auto& neighbor : cfg.bgp.neighbors) {
    if (neighbor.peer_ip == peer_ip) return &neighbor;
  }
  return nullptr;
}

}  // namespace

Ipv4Addr effective_router_id(const config::NodeConfig& cfg) {
  if (cfg.bgp.router_id != Ipv4Addr()) return cfg.bgp.router_id;
  Ipv4Addr best;
  for (const auto& iface : cfg.interfaces) {
    best = std::max(best, iface.address);
  }
  return best;
}

std::vector<BgpSim::Session> BgpSim::derive_sessions(
    const topo::Snapshot& snapshot) const {
  std::vector<Session> sessions;
  const topo::Topology& topology = snapshot.topology;
  for (uint32_t li = 0; li < topology.num_links(); ++li) {
    const topo::Link& link = topology.link(li);
    if (!link.up) continue;
    const auto& cfg_a = snapshot.configs[link.a];
    const auto& cfg_b = snapshot.configs[link.b];
    if (!cfg_a.bgp.enabled || !cfg_b.bgp.enabled) continue;
    const auto* ia = cfg_a.find_interface(link.a_if);
    const auto* ib = cfg_b.find_interface(link.b_if);
    if (!ia || !ib || !ia->enabled || !ib->enabled) continue;
    const auto* na = find_neighbor(cfg_a, ib->address);
    const auto* nb = find_neighbor(cfg_b, ia->address);
    if (!na || !nb) continue;
    if (na->remote_as != cfg_b.bgp.as_number ||
        nb->remote_as != cfg_a.bgp.as_number) {
      continue;
    }
    sessions.push_back({link.a, link.b, li, ia->address, ib->address,
                        cfg_a.bgp.as_number, cfg_b.bgp.as_number});
  }
  std::sort(sessions.begin(), sessions.end());
  return sessions;
}

std::map<Ipv4Prefix, BgpRoute> BgpSim::derive_originations(
    const topo::Snapshot& snapshot, topo::NodeId node) const {
  std::map<Ipv4Prefix, BgpRoute> out;
  const config::NodeConfig& cfg = snapshot.configs[node];
  if (!cfg.bgp.enabled) return out;
  const Ipv4Addr router_id = effective_router_id(cfg);

  auto originate = [&](const Ipv4Prefix& prefix) {
    BgpRoute route;
    route.prefix = prefix;
    route.origin_router_id = router_id;
    out.try_emplace(prefix, std::move(route));
  };

  for (const Ipv4Prefix& prefix : cfg.bgp.networks) originate(prefix);
  if (cfg.bgp.redistribute_connected) {
    for (const auto& iface : cfg.interfaces) {
      if (iface.enabled) originate(iface.subnet());
    }
  }
  if (cfg.bgp.redistribute_static) {
    for (const auto& route : cfg.static_routes) originate(route.prefix);
  }
  if (cfg.bgp.redistribute_ospf && ospf_) {
    for (const auto& [prefix, route] : ospf_->routes(node)) {
      (void)route;
      originate(prefix);
    }
  }
  return out;
}

void BgpSim::build(const topo::Snapshot& snapshot) {
  const size_t n = snapshot.topology.num_nodes();
  sessions_ = derive_sessions(snapshot);
  by_node_.assign(n, {});
  for (const Session& session : sessions_) {
    by_node_[session.a].push_back(&session);
    by_node_[session.b].push_back(&session);
  }
  rib_in_.clear();
  sent_.clear();
  best_.assign(n, {});
  originations_.assign(n, {});
  work_items_ = 0;

  Worklist work;
  for (topo::NodeId node = 0; node < n; ++node) {
    originations_[node] = derive_originations(snapshot, node);
    for (const auto& [prefix, route] : originations_[node]) {
      (void)route;
      work.insert({node, prefix});
    }
  }
  std::set<topo::NodeId> dirty;
  converge(snapshot, work, dirty);
}

const BgpSim::Session* BgpSim::find_session(topo::NodeId node,
                                            topo::NodeId peer,
                                            uint32_t link) const {
  for (const Session* session : by_node_[node]) {
    if (session->link == link &&
        (session->a == peer || session->b == peer)) {
      return session;
    }
  }
  return nullptr;
}

std::optional<BgpRoute> BgpSim::advertisement(const topo::Snapshot& snapshot,
                                              const Session& session,
                                              bool a_to_b,
                                              const Ipv4Prefix& prefix) const {
  const topo::NodeId sender = a_to_b ? session.a : session.b;
  const Ipv4Addr peer_ip = a_to_b ? session.b_ip : session.a_ip;
  const uint32_t own_as = a_to_b ? session.a_as : session.b_as;

  auto it = best_[sender].find(prefix);
  if (it == best_[sender].end()) return std::nullopt;
  const Best& best = it->second;
  // No route reflection: iBGP-learned routes stay within the AS edge.
  if (!session.ebgp() && !best.local && !best.ebgp) return std::nullopt;

  const config::NodeConfig& cfg = snapshot.configs[sender];
  const config::BgpNeighborConfig* neighbor = find_neighbor(cfg, peer_ip);
  if (!neighbor) return std::nullopt;

  std::optional<BgpRoute> route =
      apply_route_map(cfg, neighbor->export_map, best.route, own_as);
  if (!route) return std::nullopt;
  if (session.ebgp()) {
    route->as_path.insert(route->as_path.begin(), own_as);
    route->local_pref = 100;  // local-pref does not cross AS boundaries
  }
  return route;
}

bool BgpSim::process(const topo::Snapshot& snapshot, topo::NodeId node,
                     const Ipv4Prefix& prefix, Worklist& work) {
  ++work_items_;
  // ---- Decision: collect candidates -------------------------------------
  std::optional<Best> winner;
  auto consider = [&](const Best& candidate) {
    if (!winner || better(candidate, *winner)) winner = candidate;
  };

  auto oit = originations_[node].find(prefix);
  if (oit != originations_[node].end()) {
    Best local;
    local.route = oit->second;
    local.local = true;
    consider(local);
  }

  const config::NodeConfig& cfg = snapshot.configs[node];
  for (const Session* session : by_node_[node]) {
    const bool node_is_a = session->a == node;
    const topo::NodeId peer = node_is_a ? session->b : session->a;
    const Ipv4Addr peer_ip = node_is_a ? session->b_ip : session->a_ip;
    const uint32_t own_as = node_is_a ? session->a_as : session->b_as;
    auto rit = rib_in_.find({node, peer, session->link});
    if (rit == rib_in_.end()) continue;
    auto pit = rit->second.find(prefix);
    if (pit == rit->second.end()) continue;
    const BgpRoute& raw = pit->second;
    if (raw.as_path_contains(own_as)) continue;  // AS loop
    const config::BgpNeighborConfig* neighbor = find_neighbor(cfg, peer_ip);
    if (!neighbor) continue;
    std::optional<BgpRoute> imported =
        apply_route_map(cfg, neighbor->import_map, raw, own_as);
    if (!imported) continue;
    Best candidate;
    candidate.route = std::move(*imported);
    candidate.local = false;
    candidate.ebgp = session->ebgp();
    candidate.via = peer;
    candidate.link = session->link;
    candidate.via_ip = peer_ip;
    consider(candidate);
  }

  // ---- Loc-RIB update -----------------------------------------------------
  auto bit = best_[node].find(prefix);
  const bool had = bit != best_[node].end();
  if (had && winner && bit->second == *winner) return false;
  if (!had && !winner) return false;
  if (winner) {
    best_[node][prefix] = *winner;
  } else {
    best_[node].erase(bit);
  }

  // ---- Advertise the change on every session ------------------------------
  for (const Session* session : by_node_[node]) {
    const bool a_to_b = session->a == node;
    const topo::NodeId peer = a_to_b ? session->b : session->a;
    std::optional<BgpRoute> adv =
        advertisement(snapshot, *session, a_to_b, prefix);
    auto& sent = sent_[{node, peer, session->link}];
    auto& peer_rib = rib_in_[{peer, node, session->link}];
    auto sit = sent.find(prefix);
    const bool was_sent = sit != sent.end();
    if (adv) {
      if (was_sent && sit->second == *adv) continue;
      sent[prefix] = *adv;
      peer_rib[prefix] = *adv;
    } else {
      if (!was_sent) continue;
      sent.erase(sit);
      peer_rib.erase(prefix);
    }
    work.insert({peer, prefix});
  }
  return true;
}

void BgpSim::resend_all(const topo::Snapshot& snapshot,
                        const Session& session, bool a_to_b, Worklist& work) {
  const topo::NodeId sender = a_to_b ? session.a : session.b;
  const topo::NodeId peer = a_to_b ? session.b : session.a;
  auto& sent = sent_[{sender, peer, session.link}];
  auto& peer_rib = rib_in_[{peer, sender, session.link}];

  // Prefixes to (re)advertise: everything in Loc-RIB plus everything
  // previously sent (for withdrawals).
  std::set<Ipv4Prefix> prefixes;
  for (const auto& [prefix, best] : best_[sender]) {
    (void)best;
    prefixes.insert(prefix);
  }
  for (const auto& [prefix, route] : sent) {
    (void)route;
    prefixes.insert(prefix);
  }
  for (const Ipv4Prefix& prefix : prefixes) {
    std::optional<BgpRoute> adv =
        advertisement(snapshot, session, a_to_b, prefix);
    auto sit = sent.find(prefix);
    const bool was_sent = sit != sent.end();
    if (adv) {
      if (was_sent && sit->second == *adv) continue;
      sent[prefix] = *adv;
      peer_rib[prefix] = *adv;
    } else {
      if (!was_sent) continue;
      sent.erase(sit);
      peer_rib.erase(prefix);
    }
    work.insert({peer, prefix});
  }
}

void BgpSim::converge(const topo::Snapshot& snapshot, Worklist& work,
                      std::set<topo::NodeId>& dirty) {
  size_t guard = 0;
  const size_t limit =
      1000 + 200 * snapshot.topology.num_nodes() *
                 std::max<size_t>(1, sessions_.size());
  while (!work.empty()) {
    DNA_CHECK_MSG(++guard < limit * 100, "BGP failed to converge");
    auto [node, prefix] = *work.begin();
    work.erase(work.begin());
    if (process(snapshot, node, prefix, work)) dirty.insert(node);
  }
}

std::set<topo::NodeId> BgpSim::update(
    const topo::Snapshot& snapshot,
    const std::vector<config::ConfigChange>& changes,
    const std::set<topo::NodeId>& ospf_dirty) {
  const size_t n = snapshot.topology.num_nodes();
  DNA_CHECK_MSG(best_.size() == n, "node count changed; rebuild required");
  work_items_ = 0;
  Worklist work;
  std::set<topo::NodeId> dirty;

  // ---- Session diff --------------------------------------------------------
  std::vector<Session> next_sessions = derive_sessions(snapshot);
  std::vector<Session> removed, added;
  std::set_difference(sessions_.begin(), sessions_.end(),
                      next_sessions.begin(), next_sessions.end(),
                      std::back_inserter(removed));
  std::set_difference(next_sessions.begin(), next_sessions.end(),
                      sessions_.begin(), sessions_.end(),
                      std::back_inserter(added));
  sessions_ = std::move(next_sessions);
  by_node_.assign(n, {});
  for (const Session& session : sessions_) {
    by_node_[session.a].push_back(&session);
    by_node_[session.b].push_back(&session);
  }

  for (const Session& session : removed) {
    for (bool a_to_b : {true, false}) {
      const topo::NodeId sender = a_to_b ? session.a : session.b;
      const topo::NodeId peer = a_to_b ? session.b : session.a;
      sent_.erase({sender, peer, session.link});
      auto rit = rib_in_.find({peer, sender, session.link});
      if (rit != rib_in_.end()) {
        for (const auto& [prefix, route] : rit->second) {
          (void)route;
          work.insert({peer, prefix});
        }
        rib_in_.erase(rit);
      }
    }
  }
  // New sessions: advertise both directions from current Loc-RIBs.
  for (const Session& session : added) {
    const Session* stored = find_session(session.a, session.b, session.link);
    DNA_CHECK(stored != nullptr);
    resend_all(snapshot, *stored, /*a_to_b=*/true, work);
    resend_all(snapshot, *stored, /*a_to_b=*/false, work);
  }

  // ---- Origination diff ----------------------------------------------------
  // Nodes whose originations may change: any config change, plus OSPF
  // redistribution inputs.
  std::set<topo::NodeId> orig_candidates;
  for (const auto& change : changes) {
    if (snapshot.topology.has_node(change.node)) {
      orig_candidates.insert(snapshot.topology.node_id(change.node));
    }
  }
  for (topo::NodeId node : ospf_dirty) orig_candidates.insert(node);
  for (topo::NodeId node : orig_candidates) {
    std::map<Ipv4Prefix, BgpRoute> next_orig =
        derive_originations(snapshot, node);
    for (const auto& [prefix, route] : originations_[node]) {
      auto it = next_orig.find(prefix);
      if (it == next_orig.end() || !(it->second == route)) {
        work.insert({node, prefix});
      }
    }
    for (const auto& [prefix, route] : next_orig) {
      (void)route;
      if (!originations_[node].count(prefix)) work.insert({node, prefix});
    }
    originations_[node] = std::move(next_orig);
  }

  // ---- Policy edits: force re-import and re-export ------------------------
  for (const auto& change : changes) {
    const bool policy_edit =
        change.kind == config::ChangeKind::kRouteMapChanged ||
        change.kind == config::ChangeKind::kPrefixListChanged ||
        change.kind == config::ChangeKind::kBgpNeighborModified;
    if (!policy_edit || !snapshot.topology.has_node(change.node)) continue;
    const topo::NodeId node = snapshot.topology.node_id(change.node);
    for (const Session* session : by_node_[node]) {
      const bool node_is_a = session->a == node;
      const topo::NodeId peer = node_is_a ? session->b : session->a;
      // Re-import: re-evaluate everything the peer has sent us.
      auto rit = rib_in_.find({node, peer, session->link});
      if (rit != rib_in_.end()) {
        for (const auto& [prefix, route] : rit->second) {
          (void)route;
          work.insert({node, prefix});
        }
      }
      // Re-export: our advertisements may be filtered differently now.
      resend_all(snapshot, *session, node_is_a, work);
    }
  }

  converge(snapshot, work, dirty);
  return dirty;
}

}  // namespace dna::cp
