#include "controlplane/engine.h"

namespace dna::cp {

ControlPlaneEngine::ControlPlaneEngine(topo::Snapshot snapshot)
    : snap_(std::move(snapshot)) {
  snap_.validate();
  full_build();
}

void ControlPlaneEngine::full_build() {
  Stopwatch total;
  Stopwatch sw;
  ospf_.build(snap_);
  timers_.add("ospf", sw.elapsed_seconds());
  sw.reset();
  bgp_.build(snap_);
  timers_.add("bgp", sw.elapsed_seconds());
  sw.reset();
  fibs_.clear();
  fibs_.reserve(snap_.topology.num_nodes());
  for (topo::NodeId node = 0; node < snap_.topology.num_nodes(); ++node) {
    fibs_.push_back(build_fib(node));
  }
  timers_.add("fib", sw.elapsed_seconds());
}

Fib ControlPlaneEngine::build_fib(topo::NodeId node) const {
  RibCandidates candidates;
  add_connected_routes(snap_, node, candidates);
  add_static_routes(snap_, node, candidates);
  for (const auto& [prefix, route] : ospf_.routes(node)) {
    FibEntry entry;
    entry.prefix = prefix;
    entry.action = FibEntry::Action::kForward;
    entry.protocol = Protocol::kOspf;
    entry.metric = route.metric;
    entry.hops = route.hops;
    candidates[prefix].push_back(std::move(entry));
  }
  for (const auto& [prefix, best] : bgp_.best(node)) {
    FibEntry entry;
    entry.prefix = prefix;
    entry.protocol = best.ebgp || best.local ? Protocol::kEbgp
                                             : Protocol::kIbgp;
    if (best.local) {
      entry.action = FibEntry::Action::kLocal;
    } else {
      entry.action = FibEntry::Action::kForward;
      entry.hops.push_back({best.via, best.link});
    }
    candidates[prefix].push_back(std::move(entry));
  }
  return merge_to_fib(std::move(candidates));
}

AdvanceResult ControlPlaneEngine::advance(topo::Snapshot target) {
  target.validate();
  timers_.clear();
  AdvanceResult result;
  Stopwatch sw;

  const bool structural =
      target.topology.num_nodes() != snap_.topology.num_nodes() ||
      target.topology.num_links() != snap_.topology.num_links();

  result.config_changes = config::diff_configs(snap_.configs, target.configs);
  if (!structural) {
    result.link_changes =
        topo::diff_link_states(snap_.topology, target.topology);
  }
  timers_.add("config-diff", sw.elapsed_seconds());

  bool node_set_changed = structural;
  for (const auto& change : result.config_changes) {
    if (change.kind == config::ChangeKind::kNodeAdded ||
        change.kind == config::ChangeKind::kNodeRemoved) {
      node_set_changed = true;
    }
  }

  if (node_set_changed) {
    // Structural change: rebuild everything, report the FIB diff.
    std::vector<Fib> old_fibs = std::move(fibs_);
    snap_ = std::move(target);
    full_build();
    result.fib_delta = diff_fibs(old_fibs, fibs_);
    result.rebuilt = true;
    return result;
  }

  sw.reset();
  std::set<topo::NodeId> ospf_dirty = ospf_.update(target);
  timers_.add("ospf", sw.elapsed_seconds());

  sw.reset();
  std::set<topo::NodeId> bgp_dirty =
      bgp_.update(target, result.config_changes, ospf_dirty);
  timers_.add("bgp", sw.elapsed_seconds());

  sw.reset();
  std::set<topo::NodeId> dirty = ospf_dirty;
  dirty.insert(bgp_dirty.begin(), bgp_dirty.end());
  for (const auto& change : result.config_changes) {
    if (target.topology.has_node(change.node)) {
      dirty.insert(target.topology.node_id(change.node));
    }
  }
  for (const auto& change : result.link_changes) {
    const topo::Link& link = target.topology.link(change.link);
    dirty.insert(link.a);
    dirty.insert(link.b);
  }

  snap_ = std::move(target);
  for (topo::NodeId node : dirty) {
    Fib next = build_fib(node);
    NodeFibDelta delta = diff_fib(fibs_[node], next);
    if (!delta.empty()) {
      result.fib_delta.by_node.emplace(node, std::move(delta));
      fibs_[node] = std::move(next);
    }
  }
  timers_.add("fib", sw.elapsed_seconds());
  return result;
}

std::vector<Fib> ControlPlaneEngine::compute_fibs(
    const topo::Snapshot& snapshot) {
  ControlPlaneEngine engine(snapshot);
  return engine.fibs_;
}

}  // namespace dna::cp
