// Route and FIB value types shared by the control plane and the data plane.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "topo/topology.h"
#include "util/ip.h"

namespace dna::cp {

enum class Protocol : uint8_t {
  kConnected,
  kStatic,
  kEbgp,
  kOspf,
  kIbgp,
};

/// Administrative distance: lower wins when protocols disagree on a prefix.
int admin_distance(Protocol protocol);
const char* protocol_name(Protocol protocol);

/// One forwarding next hop: the adjacent node reached over a specific link.
struct Hop {
  topo::NodeId next = topo::kNoNode;
  uint32_t link = 0;

  auto operator<=>(const Hop&) const = default;
};

struct FibEntry {
  Ipv4Prefix prefix;
  enum class Action : uint8_t { kLocal, kForward } action = Action::kForward;
  Protocol protocol = Protocol::kConnected;
  int metric = 0;
  std::vector<Hop> hops;  // sorted; empty for kLocal

  auto operator<=>(const FibEntry&) const = default;

  std::string str(const topo::Topology& topology) const;
};

/// A node's forwarding table: sorted by prefix, one entry per prefix.
using Fib = std::vector<FibEntry>;

struct NodeFibDelta {
  std::vector<FibEntry> added;
  std::vector<FibEntry> removed;

  bool empty() const { return added.empty() && removed.empty(); }
};

/// FIB changes across the network, keyed by node.
struct FibDelta {
  std::map<topo::NodeId, NodeFibDelta> by_node;

  bool empty() const;
  size_t total_changes() const;
};

/// Set-difference of two FIBs (entries compared exactly).
NodeFibDelta diff_fib(const Fib& before, const Fib& after);
FibDelta diff_fibs(const std::vector<Fib>& before,
                   const std::vector<Fib>& after);

}  // namespace dna::cp
