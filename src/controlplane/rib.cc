#include "controlplane/rib.h"

#include <algorithm>

namespace dna::cp {

void add_connected_routes(const topo::Snapshot& snapshot, topo::NodeId node,
                          RibCandidates& out) {
  for (const auto& iface : snapshot.configs[node].interfaces) {
    if (!iface.enabled) continue;
    FibEntry entry;
    entry.prefix = iface.subnet();
    entry.action = FibEntry::Action::kLocal;
    entry.protocol = Protocol::kConnected;
    out[entry.prefix].push_back(std::move(entry));
  }
}

void add_static_routes(const topo::Snapshot& snapshot, topo::NodeId node,
                       RibCandidates& out) {
  for (const auto& route : snapshot.configs[node].static_routes) {
    // Resolve the next hop to a directly adjacent node.
    for (uint32_t link_index : snapshot.topology.links_of(node)) {
      const topo::Link& link = snapshot.topology.link(link_index);
      if (!link.up) continue;
      const auto* local =
          snapshot.configs[node].find_interface(link.if_of(node));
      const topo::NodeId peer = link.peer_of(node);
      const auto* remote =
          snapshot.configs[peer].find_interface(link.if_of(peer));
      if (!local || !remote || !local->enabled || !remote->enabled) continue;
      if (remote->address != route.next_hop) continue;
      if (!local->subnet().contains(route.next_hop)) continue;
      FibEntry entry;
      entry.prefix = route.prefix;
      entry.action = FibEntry::Action::kForward;
      entry.protocol = Protocol::kStatic;
      entry.hops.push_back({peer, link_index});
      out[entry.prefix].push_back(std::move(entry));
      break;
    }
  }
}

Fib merge_to_fib(RibCandidates&& candidates) {
  Fib fib;
  fib.reserve(candidates.size());
  for (auto& [prefix, entries] : candidates) {
    // Lowest admin distance wins; among winners of equal distance and
    // metric, ECMP hops merge (e.g. two static routes to the same prefix).
    int best_ad = 256;
    for (const FibEntry& entry : entries) {
      best_ad = std::min(best_ad, admin_distance(entry.protocol));
    }
    int best_metric = INT32_MAX;
    for (const FibEntry& entry : entries) {
      if (admin_distance(entry.protocol) == best_ad) {
        best_metric = std::min(best_metric, entry.metric);
      }
    }
    FibEntry merged;
    bool first = true;
    for (FibEntry& entry : entries) {
      if (admin_distance(entry.protocol) != best_ad ||
          entry.metric != best_metric) {
        continue;
      }
      if (first) {
        merged = std::move(entry);
        first = false;
      } else {
        merged.hops.insert(merged.hops.end(), entry.hops.begin(),
                           entry.hops.end());
      }
    }
    std::sort(merged.hops.begin(), merged.hops.end());
    merged.hops.erase(std::unique(merged.hops.begin(), merged.hops.end()),
                      merged.hops.end());
    fib.push_back(std::move(merged));
  }
  std::sort(fib.begin(), fib.end());
  return fib;
}

}  // namespace dna::cp
