// Weighted directed multigraph and shortest-path-first (Dijkstra) reference.
//
// The OSPF model derives one arc per (link, direction) with the weight of
// the sending interface, so asymmetric costs are representable and parallel
// links are supported.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.h"

namespace dna::cp {

/// "Infinite" distance: unreachable. Chosen so that inf + weight
/// never overflows an int.
constexpr int kInfDist = INT32_MAX / 4;

struct Arc {
  topo::NodeId to = topo::kNoNode;
  int weight = 1;
  uint32_t link = 0;

  auto operator<=>(const Arc&) const = default;
};

struct WeightedDigraph {
  std::vector<std::vector<Arc>> out;  // by source node
  std::vector<std::vector<Arc>> in;   // by target node (Arc::to = source)

  size_t num_nodes() const { return out.size(); }

  void resize(size_t n) {
    out.assign(n, {});
    in.assign(n, {});
  }

  void add_arc(topo::NodeId from, topo::NodeId to, int weight, uint32_t link) {
    out[from].push_back({to, weight, link});
    in[to].push_back({from, weight, link});
  }

  /// Pre-sizes every adjacency vector from per-node degree counts so a bulk
  /// build (degree-count pass, then add_arc fills) never regrows a vector.
  void reserve_degrees(const std::vector<uint32_t>& out_degree,
                       const std::vector<uint32_t>& in_degree) {
    for (size_t n = 0; n < out.size() && n < out_degree.size(); ++n) {
      out[n].reserve(out_degree[n]);
    }
    for (size_t n = 0; n < in.size() && n < in_degree.size(); ++n) {
      in[n].reserve(in_degree[n]);
    }
  }

  bool operator==(const WeightedDigraph&) const = default;
};

/// Full single-source shortest paths; dist[t] == kInfDist if unreachable.
std::vector<int> dijkstra(const WeightedDigraph& graph, topo::NodeId source);

}  // namespace dna::cp
