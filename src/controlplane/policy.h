// BGP route attributes and route-map / prefix-list policy evaluation.
#pragma once

#include <optional>
#include <vector>

#include "config/model.h"
#include "topo/topology.h"
#include "util/ip.h"

namespace dna::cp {

struct BgpRoute {
  Ipv4Prefix prefix;
  std::vector<uint32_t> as_path;       // nearest AS first
  int local_pref = 100;
  int med = 0;
  std::vector<uint32_t> communities;   // kept sorted
  Ipv4Addr origin_router_id;           // router-id of the originator

  bool operator==(const BgpRoute&) const = default;

  bool has_community(uint32_t community) const;
  void set_communities_sorted(std::vector<uint32_t> communities_in);
  bool as_path_contains(uint32_t asn) const;
};

/// Applies a route map by name. Returns the transformed route, or nullopt
/// if the route is denied. Semantics:
///  * empty name: permit, unchanged;
///  * missing map: deny (matching common vendor behaviour for dangling
///    references);
///  * clauses run in sequence order, first matching clause decides;
///  * no matching clause: implicit deny.
std::optional<BgpRoute> apply_route_map(const config::NodeConfig& cfg,
                                        const std::string& map_name,
                                        const BgpRoute& route,
                                        uint32_t own_as);

}  // namespace dna::cp
