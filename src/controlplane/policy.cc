#include "controlplane/policy.h"

#include <algorithm>

namespace dna::cp {

bool BgpRoute::has_community(uint32_t community) const {
  return std::binary_search(communities.begin(), communities.end(),
                            community);
}

void BgpRoute::set_communities_sorted(std::vector<uint32_t> communities_in) {
  std::sort(communities_in.begin(), communities_in.end());
  communities_in.erase(
      std::unique(communities_in.begin(), communities_in.end()),
      communities_in.end());
  communities = std::move(communities_in);
}

bool BgpRoute::as_path_contains(uint32_t asn) const {
  return std::find(as_path.begin(), as_path.end(), asn) != as_path.end();
}

std::optional<BgpRoute> apply_route_map(const config::NodeConfig& cfg,
                                        const std::string& map_name,
                                        const BgpRoute& route,
                                        uint32_t own_as) {
  if (map_name.empty()) return route;
  const config::RouteMapConfig* map = cfg.find_route_map(map_name);
  if (!map) return std::nullopt;  // dangling reference: deny

  // Clauses ordered by sequence number.
  std::vector<const config::RouteMapClause*> clauses;
  clauses.reserve(map->clauses.size());
  for (const auto& clause : map->clauses) clauses.push_back(&clause);
  std::sort(clauses.begin(), clauses.end(),
            [](const auto* a, const auto* b) { return a->seq < b->seq; });

  for (const config::RouteMapClause* clause : clauses) {
    if (!clause->match_prefix_list.empty()) {
      const config::PrefixListConfig* list =
          cfg.find_prefix_list(clause->match_prefix_list);
      if (!list || !config::prefix_list_permits(*list, route.prefix)) {
        continue;
      }
    }
    if (clause->match_community &&
        !route.has_community(*clause->match_community)) {
      continue;
    }
    // Clause matches.
    if (clause->action == config::FilterAction::kDeny) return std::nullopt;
    BgpRoute out = route;
    if (clause->set_local_pref) out.local_pref = *clause->set_local_pref;
    if (clause->set_med) out.med = *clause->set_med;
    if (!clause->set_communities.empty()) {
      out.set_communities_sorted(clause->set_communities);
    }
    for (int i = 0; i < clause->prepend_count; ++i) {
      out.as_path.insert(out.as_path.begin(), own_as);
    }
    return out;
  }
  return std::nullopt;  // implicit deny
}

}  // namespace dna::cp
