// RIB assembly: protocol route candidates merged into a FIB by
// administrative distance, plus the connected/static candidate derivations.
#pragma once

#include "controlplane/route.h"
#include "topo/snapshot.h"
#include "util/flat_map.h"

namespace dna::cp {

/// Candidate routes per prefix, to be merged by admin distance. Hash-keyed
/// (util/flat_map.h) rather than tree-ordered: assembly only ever appends
/// per-prefix and merge_to_fib sorts its output, so the red-black tree's
/// ordering was pure overhead on the FIB rebuild path.
using RibCandidates =
    util::FlatMap<Ipv4Prefix, std::vector<FibEntry>, std::hash<Ipv4Prefix>>;

/// Adds connected-subnet entries for a node's enabled interfaces.
void add_connected_routes(const topo::Snapshot& snapshot, topo::NodeId node,
                          RibCandidates& out);

/// Adds resolved static routes. A static route resolves when its next hop
/// address belongs to an adjacent node reachable over an up link attached to
/// one of this node's enabled interfaces; unresolvable routes are dropped.
void add_static_routes(const topo::Snapshot& snapshot, topo::NodeId node,
                       RibCandidates& out);

/// Picks the winner per prefix (lowest admin distance, then lowest metric;
/// remaining ties merge ECMP hops) and emits a sorted FIB.
Fib merge_to_fib(RibCandidates&& candidates);

}  // namespace dna::cp
