// Batch what-if evaluation: one base snapshot, many candidate changes,
// verdicts for all of them.
//
//   ScenarioRunner runner(base, invariants);
//   ScenarioReport report = runner.run(link_failure_sweep(base),
//                                      {.num_threads = 8});
//   std::cout << report.str(/*top_k=*/5);
//
// Scenarios fan out over a util::ThreadPool. Each worker lazily clones one
// DnaEngine from the base snapshot and reuses it for every scenario it
// takes: evaluate the candidate differentially, record the diff, advance
// back to base. Because every evaluation starts from base semantics, a
// scenario's semantic result is independent of which worker ran it and in
// what order — the report is deterministic for any thread count (see
// report.h for the exact contract; tests/test_scenario.cc enforces it).
#pragma once

#include <vector>

#include "core/engine.h"
#include "scenario/report.h"
#include "scenario/spec.h"

namespace dna::scenario {

struct RunnerOptions {
  /// Worker threads (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Evaluation mode per scenario; kDifferential is the whole point, but
  /// kMonolithic is kept for cross-checking.
  core::Mode mode = core::Mode::kDifferential;
  /// Retain each scenario's full NetworkDiff in its result (memory-heavy
  /// for large sweeps; metrics and rankings never need it).
  bool keep_diffs = false;
};

class ScenarioRunner {
 public:
  /// `base` must be a valid snapshot; invariants are evaluated before/after
  /// every scenario.
  ScenarioRunner(topo::Snapshot base, std::vector<core::Invariant> invariants);

  /// Evaluates every spec against the base snapshot and returns the ranked
  /// report. Individual scenario failures (bad plan, unknown node) are
  /// captured per-result, never thrown.
  ScenarioReport run(const std::vector<ScenarioSpec>& specs,
                     const RunnerOptions& options = {}) const;

  const topo::Snapshot& base() const { return base_; }
  const std::vector<core::Invariant>& invariants() const {
    return invariants_;
  }

 private:
  topo::Snapshot base_;
  std::vector<core::Invariant> invariants_;
};

}  // namespace dna::scenario
