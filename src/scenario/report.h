// Aggregated results of a what-if batch, ranked by blast radius.
//
// Determinism contract: every field used for ranking and for str() is a pure
// function of (base snapshot, scenario spec, invariants) — the semantic diff
// layers the mode-equivalence property pins down. Scheduling-dependent
// diagnostics (wall time, affected-EC counts, which worker ran what) are kept
// out of both, so a report is byte-identical for 1 or N threads.
#pragma once

#include <string>
#include <vector>

#include "core/netdiff.h"
#include "util/json.h"

namespace dna::scenario {

struct ScenarioResult {
  size_t index = 0;  // position in the input spec list
  std::string name;

  bool ok = true;      // evaluation completed (plan applied, diff computed)
  std::string error;   // failure reason when !ok

  // ---- semantic blast radius (deterministic; ranking + report) -----------
  size_t fib_changes = 0;         // FIB entries added + removed
  size_t reach_lost = 0;          // canonical reach facts lost
  size_t reach_gained = 0;        // canonical reach facts gained
  size_t loops_gained = 0;        // new loop facts
  size_t blackholes_gained = 0;   // new blackhole facts
  size_t invariants_broken = 0;   // held before, violated after
  size_t invariants_fixed = 0;    // violated before, held after
  std::vector<std::string> broken_invariants;  // descriptions
  bool semantically_empty = true;

  // ---- diagnostics (scheduling-dependent; excluded from ranking/str) -----
  double seconds = 0;        // wall time of this scenario's advance
  size_t affected_ecs = 0;   // ECs re-verified (depends on engine history)
  size_t total_ecs = 0;
  size_t worker = 0;         // pool worker that evaluated it

  /// The full diff, retained only when RunnerOptions::keep_diffs is set.
  core::NetworkDiff diff;
};

/// Severity used for ranking, highest first: broken intent dominates, then
/// lost reachability and new loops/blackholes, then total churn. Failed
/// scenarios sort after every evaluated one (they carry no verdict).
/// Ties break by input order, making the ranking a total deterministic order.
bool more_severe(const ScenarioResult& a, const ScenarioResult& b);

/// One worker's wall-time breakdown over a batch — where its time went:
/// cloning its engine (the one-off base verification), evaluating
/// candidates, or rewinding back to base between them. Scheduling-
/// dependent diagnostics, excluded from str()/to_json().
struct WorkerTiming {
  size_t worker = 0;
  size_t scenarios = 0;      // scenarios this worker evaluated
  double clone_seconds = 0;  // engine construction + base verification
  double eval_seconds = 0;   // preview: apply + differential diff + rewind
};

struct ScenarioReport {
  std::vector<ScenarioResult> results;  // input order
  std::vector<size_t> ranking;          // indices into results, worst first

  // Batch-level diagnostics (excluded from str()).
  double seconds_total = 0;
  size_t threads = 1;
  size_t failures = 0;
  std::vector<WorkerTiming> worker_timings;  // by worker index

  const ScenarioResult& ranked(size_t position) const {
    return results[ranking[position]];
  }

  /// Deterministic ranked table; `top_k` caps rows (0 = all). Scenarios that
  /// failed to evaluate are listed at the bottom with their error.
  std::string str(size_t top_k = 0) const;

  /// The scheduling-dependent diagnostics str() deliberately omits: batch
  /// wall time and the per-worker clone/eval breakdown. Kept separate so
  /// the deterministic report stays byte-identical across thread counts.
  std::string timing_str() const;
};

/// Fills report.ranking and report.failures from report.results.
void rank(ScenarioReport& report);

/// Distills a computed diff into a result's verdict fields (blast-radius
/// counts, invariant flips, EC diagnostics). Identification fields (index,
/// name, timing, diff retention) are left to the caller. The single
/// extraction point both what-if surfaces — the batch runner and the query
/// service — share, so their verdicts cannot drift apart.
ScenarioResult summarize_diff(const core::NetworkDiff& diff);

/// Appends one result's deterministic verdict fields as a JSON object.
/// The single serialization point for scenario verdicts: the sweep report
/// (whatif --json) and the query service's what-if responses both call it,
/// so the two wire formats cannot drift apart.
void append_json(util::JsonWriter& json, const ScenarioResult& result);

/// Machine-readable report: the same deterministic fields as str() —
/// results in input order plus the ranking — byte-identical for any
/// thread count.
std::string to_json(const ScenarioReport& report);

}  // namespace dna::scenario
