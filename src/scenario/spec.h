// What-if scenarios: named candidate changes evaluated in batch.
//
// A ScenarioSpec pairs a human-readable name with the ChangePlan producing
// the candidate snapshot. Sweep generators enumerate the standard operator
// questions ("what if any one link failed?", "what if we drained node X?")
// so callers never hand-build fifty plans; explicit plans compose with
// generated ones in the same batch.
#pragma once

#include <string>
#include <vector>

#include "core/change.h"
#include "core/invariants.h"
#include "topo/snapshot.h"

namespace dna::scenario {

struct ScenarioSpec {
  std::string name;
  core::ChangePlan plan;

  ScenarioSpec(std::string name, core::ChangePlan plan)
      : name(std::move(name)), plan(std::move(plan)) {}
};

/// One scenario per link: "what if link i failed?". Skips links already down.
std::vector<ScenarioSpec> link_failure_sweep(const topo::Snapshot& base);

/// One scenario per enabled non-loopback interface of `node`: "what if we
/// shut node:ifN?". The drain-one-port maintenance question.
std::vector<ScenarioSpec> interface_shutdown_sweep(const topo::Snapshot& base,
                                                   const std::string& node);

/// One scenario per up link: "what if link i's cost became `cost`?".
std::vector<ScenarioSpec> link_cost_sweep(const topo::Snapshot& base,
                                          int cost);

/// `count` (non-negative) scenarios drawn from topo::random_change with the
/// given seed — the fuzz workload, reproducible from the printed seed.
std::vector<ScenarioSpec> random_change_sweep(const topo::Snapshot& base,
                                              int count, uint64_t seed);

/// The standard what-if intent set: every host-network (172.31/16) owner
/// keeps reaching every other owner's host subnet. Owners are derived from
/// the snapshot itself (any interface addressed inside 172.31/16), so this
/// works for every generator and loaded snapshot alike.
std::vector<core::Invariant> host_reachability_invariants(
    const topo::Snapshot& base);

}  // namespace dna::scenario
