#include "scenario/spec.h"

#include "topo/mutators.h"
#include "util/error.h"
#include "util/rng.h"

namespace dna::scenario {

std::vector<ScenarioSpec> link_failure_sweep(const topo::Snapshot& base) {
  std::vector<ScenarioSpec> specs;
  for (uint32_t i = 0; i < base.topology.num_links(); ++i) {
    const topo::Link& link = base.topology.link(i);
    if (!link.up) continue;
    std::string name = "fail link " + std::to_string(i) + " (" +
                       base.topology.node_name(link.a) + " <-> " +
                       base.topology.node_name(link.b) + ")";
    specs.emplace_back(std::move(name), core::ChangePlan::link_failure(i));
  }
  return specs;
}

std::vector<ScenarioSpec> interface_shutdown_sweep(const topo::Snapshot& base,
                                                   const std::string& node) {
  std::vector<ScenarioSpec> specs;
  const topo::NodeId id = base.topology.node_id(node);  // throws if unknown
  for (const config::InterfaceConfig& iface : base.configs[id].interfaces) {
    if (!iface.enabled || iface.name == "lo") continue;
    core::ChangePlan plan("shut " + node + ":" + iface.name);
    plan.add([node, if_name = iface.name](topo::Snapshot snapshot) {
      return topo::with_interface_enabled(std::move(snapshot), node, if_name,
                                          false);
    });
    specs.emplace_back("shut " + node + ":" + iface.name, std::move(plan));
  }
  return specs;
}

std::vector<ScenarioSpec> link_cost_sweep(const topo::Snapshot& base,
                                          int cost) {
  std::vector<ScenarioSpec> specs;
  for (uint32_t i = 0; i < base.topology.num_links(); ++i) {
    const topo::Link& link = base.topology.link(i);
    if (!link.up) continue;
    std::string name = "set link " + std::to_string(i) + " (" +
                       base.topology.node_name(link.a) + " <-> " +
                       base.topology.node_name(link.b) + ") cost to " +
                       std::to_string(cost);
    specs.emplace_back(std::move(name), core::ChangePlan::link_cost(i, cost));
  }
  return specs;
}

std::vector<ScenarioSpec> random_change_sweep(const topo::Snapshot& base,
                                              int count, uint64_t seed) {
  DNA_CHECK(count >= 0);
  // Draw all mutations up front so the spec list (names and targets) is a
  // pure function of (base, count, seed), independent of evaluation order.
  std::vector<ScenarioSpec> specs;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    topo::RandomChange change = topo::random_change(base, rng);
    core::ChangePlan plan(change.description);
    plan.add([target = std::move(change.snapshot)](topo::Snapshot) {
      return target;
    });
    specs.emplace_back("random #" + std::to_string(i) + ": " +
                           plan.description(),
                       std::move(plan));
  }
  return specs;
}

std::vector<core::Invariant> host_reachability_invariants(
    const topo::Snapshot& base) {
  const Ipv4Prefix hosts(Ipv4Addr(172, 31, 0, 0), 16);
  std::vector<std::pair<std::string, Ipv4Prefix>> owners;
  for (topo::NodeId node = 0; node < base.topology.num_nodes(); ++node) {
    for (const config::InterfaceConfig& iface : base.configs[node].interfaces) {
      if (hosts.contains(iface.address)) {
        owners.emplace_back(base.topology.node_name(node), iface.subnet());
      }
    }
  }
  std::vector<core::Invariant> invariants;
  for (const auto& [src, src_prefix] : owners) {
    for (const auto& [dst, dst_prefix] : owners) {
      if (src == dst) continue;
      invariants.push_back(
          {core::Invariant::Kind::kReachable, src, dst, "", dst_prefix});
    }
  }
  return invariants;
}

}  // namespace dna::scenario
