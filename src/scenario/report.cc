#include "scenario/report.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace dna::scenario {

namespace {

/// Lexicographic severity key, larger = worse.
auto severity_key(const ScenarioResult& r) {
  const size_t damage = r.reach_lost + r.loops_gained + r.blackholes_gained;
  const size_t churn = r.reach_gained + r.fib_changes;
  return std::make_tuple(r.ok ? 1 : 0, r.invariants_broken, damage, churn,
                         r.invariants_fixed);
}

}  // namespace

bool more_severe(const ScenarioResult& a, const ScenarioResult& b) {
  const auto ka = severity_key(a);
  const auto kb = severity_key(b);
  if (ka != kb) return ka > kb;
  return a.index < b.index;
}

void rank(ScenarioReport& report) {
  report.ranking.resize(report.results.size());
  for (size_t i = 0; i < report.ranking.size(); ++i) report.ranking[i] = i;
  std::sort(report.ranking.begin(), report.ranking.end(),
            [&](size_t a, size_t b) {
              return more_severe(report.results[a], report.results[b]);
            });
  report.failures = 0;
  for (const ScenarioResult& result : report.results) {
    if (!result.ok) ++report.failures;
  }
}

std::string ScenarioReport::str(size_t top_k) const {
  std::ostringstream out;
  const size_t evaluated = results.size() - failures;
  out << "what-if report: " << results.size() << " scenario(s), " << evaluated
      << " evaluated, " << failures << " failed\n";
  size_t shown = 0;
  for (size_t position = 0; position < ranking.size(); ++position) {
    const ScenarioResult& r = results[ranking[position]];
    if (!r.ok) break;  // failures sort last; printed separately below
    if (top_k != 0 && shown == top_k) break;
    ++shown;
    out << "  #" << position + 1 << " " << r.name << "\n";
    if (r.semantically_empty && r.invariants_broken == 0 &&
        r.invariants_fixed == 0) {
      out << "      no semantic effect\n";
      continue;
    }
    out << "      invariants broken: " << r.invariants_broken
        << ", fixed: " << r.invariants_fixed << " | reach lost: "
        << r.reach_lost << ", gained: " << r.reach_gained << " | new loops: "
        << r.loops_gained << ", new blackholes: " << r.blackholes_gained
        << " | fib changes: " << r.fib_changes << "\n";
    for (const std::string& description : r.broken_invariants) {
      out << "      breaks: " << description << "\n";
    }
  }
  if (top_k != 0 && evaluated > shown) {
    out << "  ... " << evaluated - shown << " less severe scenario(s)\n";
  }
  for (size_t position = 0; position < ranking.size(); ++position) {
    const ScenarioResult& r = results[ranking[position]];
    if (r.ok) continue;
    out << "  FAILED " << r.name << ": " << r.error << "\n";
  }
  return out.str();
}

}  // namespace dna::scenario
