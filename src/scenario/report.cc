#include "scenario/report.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace dna::scenario {

namespace {

/// Lexicographic severity key, larger = worse.
auto severity_key(const ScenarioResult& r) {
  const size_t damage = r.reach_lost + r.loops_gained + r.blackholes_gained;
  const size_t churn = r.reach_gained + r.fib_changes;
  return std::make_tuple(r.ok ? 1 : 0, r.invariants_broken, damage, churn,
                         r.invariants_fixed);
}

}  // namespace

bool more_severe(const ScenarioResult& a, const ScenarioResult& b) {
  const auto ka = severity_key(a);
  const auto kb = severity_key(b);
  if (ka != kb) return ka > kb;
  return a.index < b.index;
}

void rank(ScenarioReport& report) {
  report.ranking.resize(report.results.size());
  for (size_t i = 0; i < report.ranking.size(); ++i) report.ranking[i] = i;
  std::sort(report.ranking.begin(), report.ranking.end(),
            [&](size_t a, size_t b) {
              return more_severe(report.results[a], report.results[b]);
            });
  report.failures = 0;
  for (const ScenarioResult& result : report.results) {
    if (!result.ok) ++report.failures;
  }
}

ScenarioResult summarize_diff(const core::NetworkDiff& diff) {
  ScenarioResult result;
  result.fib_changes = diff.fib_delta.total_changes();
  result.reach_lost = diff.reach_delta.lost.size();
  result.reach_gained = diff.reach_delta.gained.size();
  result.loops_gained = diff.reach_delta.loops_gained.size();
  result.blackholes_gained = diff.reach_delta.blackholes_gained.size();
  for (const core::InvariantFlip& flip : diff.invariant_flips) {
    if (flip.before_holds && !flip.after_holds) {
      ++result.invariants_broken;
      result.broken_invariants.push_back(flip.description);
    } else if (!flip.before_holds && flip.after_holds) {
      ++result.invariants_fixed;
    }
  }
  result.semantically_empty = diff.semantically_empty();
  result.affected_ecs = diff.affected_ecs;
  result.total_ecs = diff.total_ecs;
  return result;
}

void append_json(util::JsonWriter& json, const ScenarioResult& result) {
  json.begin_object();
  json.key("name").value(result.name);
  json.key("ok").value(result.ok);
  if (!result.ok) json.key("error").value(result.error);
  json.key("invariants_broken").value(result.invariants_broken);
  json.key("invariants_fixed").value(result.invariants_fixed);
  json.key("broken_invariants").begin_array();
  for (const std::string& description : result.broken_invariants) {
    json.value(description);
  }
  json.end_array();
  json.key("reach_lost").value(result.reach_lost);
  json.key("reach_gained").value(result.reach_gained);
  json.key("loops_gained").value(result.loops_gained);
  json.key("blackholes_gained").value(result.blackholes_gained);
  json.key("fib_changes").value(result.fib_changes);
  json.key("semantically_empty").value(result.semantically_empty);
  json.end_object();
}

std::string to_json(const ScenarioReport& report) {
  util::JsonWriter json;
  json.begin_object();
  json.key("scenarios").value(report.results.size());
  json.key("evaluated").value(report.results.size() - report.failures);
  json.key("failures").value(report.failures);
  json.key("results").begin_array();
  for (const ScenarioResult& result : report.results) {
    append_json(json, result);
  }
  json.end_array();
  json.key("ranking").begin_array();
  for (const size_t index : report.ranking) json.value(index);
  json.end_array();
  json.end_object();
  return json.str();
}

std::string ScenarioReport::str(size_t top_k) const {
  std::ostringstream out;
  const size_t evaluated = results.size() - failures;
  out << "what-if report: " << results.size() << " scenario(s), " << evaluated
      << " evaluated, " << failures << " failed\n";
  size_t shown = 0;
  for (size_t position = 0; position < ranking.size(); ++position) {
    const ScenarioResult& r = results[ranking[position]];
    if (!r.ok) break;  // failures sort last; printed separately below
    if (top_k != 0 && shown == top_k) break;
    ++shown;
    out << "  #" << position + 1 << " " << r.name << "\n";
    if (r.semantically_empty && r.invariants_broken == 0 &&
        r.invariants_fixed == 0) {
      out << "      no semantic effect\n";
      continue;
    }
    out << "      invariants broken: " << r.invariants_broken
        << ", fixed: " << r.invariants_fixed << " | reach lost: "
        << r.reach_lost << ", gained: " << r.reach_gained << " | new loops: "
        << r.loops_gained << ", new blackholes: " << r.blackholes_gained
        << " | fib changes: " << r.fib_changes << "\n";
    for (const std::string& description : r.broken_invariants) {
      out << "      breaks: " << description << "\n";
    }
  }
  if (top_k != 0 && evaluated > shown) {
    out << "  ... " << evaluated - shown << " less severe scenario(s)\n";
  }
  for (size_t position = 0; position < ranking.size(); ++position) {
    const ScenarioResult& r = results[ranking[position]];
    if (r.ok) continue;
    out << "  FAILED " << r.name << ": " << r.error << "\n";
  }
  return out.str();
}

std::string ScenarioReport::timing_str() const {
  std::ostringstream out;
  out << "timing: " << results.size() << " scenario(s) in " << seconds_total
      << " s on " << threads << " thread(s)\n";
  for (const WorkerTiming& t : worker_timings) {
    if (t.scenarios == 0 && t.clone_seconds == 0) continue;  // idle worker
    out << "  worker " << t.worker << ": " << t.scenarios << " scenario(s), "
        << "clone " << t.clone_seconds * 1e3 << " ms, eval "
        << t.eval_seconds * 1e3 << " ms";
    if (t.scenarios > 0) {
      out << " (" << t.eval_seconds / t.scenarios * 1e3 << " ms/scenario)";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace dna::scenario
