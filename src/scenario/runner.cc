#include "scenario/runner.h"

#include <exception>
#include <memory>

#include "util/threadpool.h"
#include "util/timer.h"

namespace dna::scenario {

namespace {

ScenarioResult evaluate(core::DnaEngine& engine, const topo::Snapshot& base,
                        const ScenarioSpec& spec, const RunnerOptions& options,
                        size_t index) {
  ScenarioResult result;
  result.index = index;
  result.name = spec.name;

  topo::Snapshot target = spec.plan.apply(base);
  Stopwatch stopwatch;
  core::NetworkDiff diff = engine.advance(std::move(target), options.mode);
  result.seconds = stopwatch.elapsed_seconds();

  result.fib_changes = diff.fib_delta.total_changes();
  result.reach_lost = diff.reach_delta.lost.size();
  result.reach_gained = diff.reach_delta.gained.size();
  result.loops_gained = diff.reach_delta.loops_gained.size();
  result.blackholes_gained = diff.reach_delta.blackholes_gained.size();
  for (const core::InvariantFlip& flip : diff.invariant_flips) {
    if (flip.before_holds && !flip.after_holds) {
      ++result.invariants_broken;
      result.broken_invariants.push_back(flip.description);
    } else if (!flip.before_holds && flip.after_holds) {
      ++result.invariants_fixed;
    }
  }
  result.semantically_empty = diff.semantically_empty();
  result.affected_ecs = diff.affected_ecs;
  result.total_ecs = diff.total_ecs;
  if (options.keep_diffs) result.diff = std::move(diff);

  // Rewind to base so the next scenario this engine takes starts from the
  // same semantic state a fresh engine would.
  engine.advance(base, options.mode);
  return result;
}

}  // namespace

ScenarioRunner::ScenarioRunner(topo::Snapshot base,
                               std::vector<core::Invariant> invariants)
    : base_(std::move(base)), invariants_(std::move(invariants)) {
  base_.validate();
}

ScenarioReport ScenarioRunner::run(const std::vector<ScenarioSpec>& specs,
                                   const RunnerOptions& options) const {
  Stopwatch stopwatch;
  util::ThreadPool pool(options.num_threads);

  ScenarioReport report;
  report.threads = pool.num_workers();
  report.results.resize(specs.size());

  // One engine per worker, built lazily on the worker's first scenario so
  // the (expensive) base verifications themselves run in parallel.
  std::vector<std::unique_ptr<core::DnaEngine>> engines(pool.num_workers());

  pool.parallel_for(specs.size(), [&](size_t worker, size_t index) {
    std::unique_ptr<core::DnaEngine>& engine = engines[worker];
    try {
      if (!engine) {
        engine = std::make_unique<core::DnaEngine>(base_);
        for (const core::Invariant& invariant : invariants_) {
          engine->add_invariant(invariant);
        }
      }
      report.results[index] =
          evaluate(*engine, base_, specs[index], options, index);
    } catch (const std::exception& e) {
      // The engine may be mid-advance; drop it so the worker rebuilds a
      // clean clone for its next scenario.
      engine.reset();
      ScenarioResult& failed = report.results[index];
      failed = ScenarioResult{};
      failed.index = index;
      failed.name = specs[index].name;
      failed.ok = false;
      failed.error = e.what();
    }
    report.results[index].worker = worker;
  });

  rank(report);
  report.seconds_total = stopwatch.elapsed_seconds();
  return report;
}

}  // namespace dna::scenario
