#include "scenario/runner.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "obs/metrics.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace dna::scenario {

namespace {

ScenarioResult evaluate(core::DnaEngine& engine, const topo::Snapshot& base,
                        const ScenarioSpec& spec, const RunnerOptions& options,
                        size_t index) {
  // preview() evaluates the candidate and rewinds to base, so the next
  // scenario this engine takes starts from the same semantic state a fresh
  // engine would.
  core::NetworkDiff diff = engine.preview(spec.plan.apply(base), options.mode);
  ScenarioResult result = summarize_diff(diff);
  result.index = index;
  result.name = spec.name;
  result.seconds = diff.seconds_total;
  if (options.keep_diffs) result.diff = std::move(diff);
  return result;
}

}  // namespace

ScenarioRunner::ScenarioRunner(topo::Snapshot base,
                               std::vector<core::Invariant> invariants)
    : base_(std::move(base)), invariants_(std::move(invariants)) {
  base_.validate();
}

ScenarioReport ScenarioRunner::run(const std::vector<ScenarioSpec>& specs,
                                   const RunnerOptions& options) const {
  Stopwatch stopwatch;
  util::ThreadPool pool(options.num_threads);

  ScenarioReport report;
  report.threads = pool.num_workers();
  report.results.resize(specs.size());

  // One engine per worker, built lazily on the worker's first scenario so
  // the (expensive) base verifications themselves run in parallel. The
  // per-worker timing slots are written lock-free — each worker owns its
  // own index.
  std::vector<std::unique_ptr<core::DnaEngine>> engines(pool.num_workers());
  std::vector<WorkerTiming> timings(pool.num_workers());
  for (size_t w = 0; w < timings.size(); ++w) timings[w].worker = w;

  // Work items are multi-scenario *chunks*, not single scenarios. With one
  // pool task per scenario, a modest sweep on a wide pool touches every
  // worker for a scenario or two each — and every touched worker pays a
  // full engine clone (a base verification), which then dominates the
  // batch and flattens scaling (the ~1.0x rows in the scenario baseline).
  // Sizing chunks so each one carries enough evaluations to amortize its
  // worker's clone caps how many clones a sweep can possibly pay, while
  // two chunks per worker still leave slack for stealing to balance the
  // tail — the same chunk math the service's batch fan-out uses.
  constexpr size_t kMinChunkScenarios = 4;
  const size_t max_chunks =
      std::max<size_t>(1, std::min(specs.size(), pool.num_workers() * 2));
  const size_t chunk_len = std::max(
      kMinChunkScenarios, (specs.size() + max_chunks - 1) / max_chunks);
  const size_t num_chunks = (specs.size() + chunk_len - 1) / chunk_len;

  pool.parallel_for(num_chunks, [&](size_t worker, size_t chunk) {
    std::unique_ptr<core::DnaEngine>& engine = engines[worker];
    WorkerTiming& timing = timings[worker];
    const size_t begin = chunk * chunk_len;
    const size_t end = std::min(specs.size(), begin + chunk_len);
    for (size_t index = begin; index < end; ++index) {
      try {
        if (!engine) {
          const uint64_t clone_start = obs::now_ns();
          engine = std::make_unique<core::DnaEngine>(base_);
          for (const core::Invariant& invariant : invariants_) {
            engine->add_invariant(invariant);
          }
          timing.clone_seconds +=
              static_cast<double>(obs::now_ns() - clone_start) * 1e-9;
        }
        const uint64_t eval_start = obs::now_ns();
        report.results[index] =
            evaluate(*engine, base_, specs[index], options, index);
        timing.eval_seconds +=
            static_cast<double>(obs::now_ns() - eval_start) * 1e-9;
        ++timing.scenarios;
      } catch (const std::exception& e) {
        // The engine may be mid-advance; drop it so the worker rebuilds a
        // clean clone for its next scenario.
        engine.reset();
        ScenarioResult& failed = report.results[index];
        failed = ScenarioResult{};
        failed.index = index;
        failed.name = specs[index].name;
        failed.ok = false;
        failed.error = e.what();
      } catch (...) {
        // A non-std exception from a user-supplied plan functor must also
        // fail only its own scenario — letting it escape would reach the
        // pool and abort the whole batch from wait_idle().
        engine.reset();
        ScenarioResult& failed = report.results[index];
        failed = ScenarioResult{};
        failed.index = index;
        failed.name = specs[index].name;
        failed.ok = false;
        failed.error = "scenario evaluation failed";
      }
      report.results[index].worker = worker;
    }
  });

  rank(report);
  report.seconds_total = stopwatch.elapsed_seconds();
  report.worker_timings = std::move(timings);
  return report;
}

}  // namespace dna::scenario
