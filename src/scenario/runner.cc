#include "scenario/runner.h"

#include <exception>
#include <memory>

#include "obs/metrics.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace dna::scenario {

namespace {

ScenarioResult evaluate(core::DnaEngine& engine, const topo::Snapshot& base,
                        const ScenarioSpec& spec, const RunnerOptions& options,
                        size_t index) {
  // preview() evaluates the candidate and rewinds to base, so the next
  // scenario this engine takes starts from the same semantic state a fresh
  // engine would.
  core::NetworkDiff diff = engine.preview(spec.plan.apply(base), options.mode);
  ScenarioResult result = summarize_diff(diff);
  result.index = index;
  result.name = spec.name;
  result.seconds = diff.seconds_total;
  if (options.keep_diffs) result.diff = std::move(diff);
  return result;
}

}  // namespace

ScenarioRunner::ScenarioRunner(topo::Snapshot base,
                               std::vector<core::Invariant> invariants)
    : base_(std::move(base)), invariants_(std::move(invariants)) {
  base_.validate();
}

ScenarioReport ScenarioRunner::run(const std::vector<ScenarioSpec>& specs,
                                   const RunnerOptions& options) const {
  Stopwatch stopwatch;
  util::ThreadPool pool(options.num_threads);

  ScenarioReport report;
  report.threads = pool.num_workers();
  report.results.resize(specs.size());

  // One engine per worker, built lazily on the worker's first scenario so
  // the (expensive) base verifications themselves run in parallel. The
  // per-worker timing slots are written lock-free — each worker owns its
  // own index.
  std::vector<std::unique_ptr<core::DnaEngine>> engines(pool.num_workers());
  std::vector<WorkerTiming> timings(pool.num_workers());
  for (size_t w = 0; w < timings.size(); ++w) timings[w].worker = w;

  pool.parallel_for(specs.size(), [&](size_t worker, size_t index) {
    std::unique_ptr<core::DnaEngine>& engine = engines[worker];
    WorkerTiming& timing = timings[worker];
    try {
      if (!engine) {
        const uint64_t clone_start = obs::now_ns();
        engine = std::make_unique<core::DnaEngine>(base_);
        for (const core::Invariant& invariant : invariants_) {
          engine->add_invariant(invariant);
        }
        timing.clone_seconds +=
            static_cast<double>(obs::now_ns() - clone_start) * 1e-9;
      }
      const uint64_t eval_start = obs::now_ns();
      report.results[index] =
          evaluate(*engine, base_, specs[index], options, index);
      timing.eval_seconds +=
          static_cast<double>(obs::now_ns() - eval_start) * 1e-9;
      ++timing.scenarios;
    } catch (const std::exception& e) {
      // The engine may be mid-advance; drop it so the worker rebuilds a
      // clean clone for its next scenario.
      engine.reset();
      ScenarioResult& failed = report.results[index];
      failed = ScenarioResult{};
      failed.index = index;
      failed.name = specs[index].name;
      failed.ok = false;
      failed.error = e.what();
    } catch (...) {
      // A non-std exception from a user-supplied plan functor must also
      // fail only its own scenario — letting it escape would reach the
      // pool and abort the whole batch from wait_idle().
      engine.reset();
      ScenarioResult& failed = report.results[index];
      failed = ScenarioResult{};
      failed.index = index;
      failed.name = specs[index].name;
      failed.ok = false;
      failed.error = "scenario evaluation failed";
    }
    report.results[index].worker = worker;
  });

  rank(report);
  report.seconds_total = stopwatch.elapsed_seconds();
  report.worker_timings = std::move(timings);
  return report;
}

}  // namespace dna::scenario
